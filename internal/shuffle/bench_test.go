package shuffle

import (
	"testing"

	"deca/internal/decompose"
	"deca/internal/memory"
)

// The core §4.3.2 comparison at the buffer level: eager combining with
// boxed values (a fresh allocation per combine) vs in-place page-segment
// reuse.

func BenchmarkObjectAggCombine(b *testing.B) {
	buf := NewObjectAgg[int64, int64](func(a, c int64) int64 { return a + c },
		ObjectAggConfig[int64, int64]{})
	defer buf.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Put(int64(i&1023), 1)
	}
}

func BenchmarkDecaAggCombine(b *testing.B) {
	m := memory.NewManager(1<<20, 0)
	buf, err := NewDecaAgg[int64, int64](m, func(a, c int64) int64 { return a + c },
		decompose.Int64Codec{}, decompose.Int64Codec{}, "")
	if err != nil {
		b.Fatal(err)
	}
	defer buf.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Put(int64(i&1023), 1)
	}
}

func BenchmarkObjectGroupPut(b *testing.B) {
	buf := NewObjectGroup[int64, int64](ObjectGroupConfig[int64, int64]{})
	defer buf.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Put(int64(i&255), int64(i))
	}
}

func BenchmarkDecaGroupPut(b *testing.B) {
	m := memory.NewManager(1<<20, 0)
	buf := NewDecaGroup[int64, int64](m, decompose.Int64Codec{}, decompose.Int64Codec{}, "")
	defer buf.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Put(int64(i&255), int64(i))
	}
}

func BenchmarkObjectSortDrain(b *testing.B) {
	less := func(x, y int64) bool { return x < y }
	const n = 50_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		buf := NewObjectSort[int64, int64](less, ObjectSortConfig[int64, int64]{})
		for j := 0; j < n; j++ {
			buf.Put(int64((j*2654435761)%n), int64(j))
		}
		b.StartTimer()
		cnt := 0
		if err := buf.DrainSorted(func(int64, int64) bool { cnt++; return true }); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		buf.Release()
		b.StartTimer()
	}
}

func BenchmarkDecaSortDrain(b *testing.B) {
	m := memory.NewManager(1<<20, 0)
	less := func(x, y int64) bool { return x < y }
	const n = 50_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		buf := NewDecaSort[int64, int64](m, less, decompose.Int64Codec{}, decompose.Int64Codec{}, "")
		for j := 0; j < n; j++ {
			buf.Put(int64((j*2654435761)%n), int64(j))
		}
		b.StartTimer()
		cnt := 0
		if err := buf.DrainSorted(func(int64, int64) bool { cnt++; return true }); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		buf.Release()
		b.StartTimer()
	}
}
