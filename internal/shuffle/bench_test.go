package shuffle

import (
	"testing"

	"deca/internal/decompose"
	"deca/internal/memory"
)

// The core §4.3.2 comparison at the buffer level: eager combining with
// boxed values (a fresh allocation per combine) vs in-place page-segment
// reuse.

func BenchmarkObjectAggCombine(b *testing.B) {
	buf := NewObjectAgg[int64, int64](func(a, c int64) int64 { return a + c },
		ObjectAggConfig[int64, int64]{})
	defer buf.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Put(int64(i&1023), 1)
	}
}

func BenchmarkDecaAggCombine(b *testing.B) {
	m := memory.NewManager(1<<20, 0)
	buf, err := NewDecaAgg[int64, int64](m, func(a, c int64) int64 { return a + c },
		decompose.Int64Codec{}, decompose.Int64Codec{}, "")
	if err != nil {
		b.Fatal(err)
	}
	defer buf.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Put(int64(i&1023), 1)
	}
}

func BenchmarkObjectGroupPut(b *testing.B) {
	buf := NewObjectGroup[int64, int64](ObjectGroupConfig[int64, int64]{})
	defer buf.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Put(int64(i&255), int64(i))
	}
}

func BenchmarkDecaGroupPut(b *testing.B) {
	m := memory.NewManager(1<<20, 0)
	buf := NewDecaGroup[int64, int64](m, decompose.Int64Codec{}, decompose.Int64Codec{}, "")
	defer buf.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Put(int64(i&255), int64(i))
	}
}

// Reduce-side merge benchmarks: the §6.1 zero-copy claim at the buffer
// level. Each iteration merges M collision-light map outputs into one
// reduce buffer, either by adopting page groups (MergeFrom) or through
// the decode → re-hash → re-encode drain/re-Put baseline.

const (
	mergeSources   = 8
	recsPerSource  = 4096
	mergeKeyStride = recsPerSource // disjoint key ranges: collision-light
)

func buildAggSources(b *testing.B, m *memory.Manager) []*DecaAgg[int64, int64] {
	b.Helper()
	srcs := make([]*DecaAgg[int64, int64], mergeSources)
	for s := range srcs {
		buf, err := NewDecaAgg[int64, int64](m, func(x, y int64) int64 { return x + y },
			decompose.Int64Codec{}, decompose.Int64Codec{}, "")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < recsPerSource; i++ {
			buf.Put(int64(s*mergeKeyStride+i), int64(i))
		}
		srcs[s] = buf
	}
	return srcs
}

func BenchmarkDecaAggMergeZeroCopy(b *testing.B) {
	m := memory.NewManager(1<<20, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srcs := buildAggSources(b, m)
		dst, _ := NewDecaAgg[int64, int64](m, func(x, y int64) int64 { return x + y },
			decompose.Int64Codec{}, decompose.Int64Codec{}, "")
		b.StartTimer()
		for _, src := range srcs {
			if err := dst.MergeFrom(src); err != nil {
				b.Fatal(err)
			}
			src.Release()
		}
		b.StopTimer()
		dst.Release()
		b.StartTimer()
	}
}

func BenchmarkDecaAggMergeDrain(b *testing.B) {
	m := memory.NewManager(1<<20, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srcs := buildAggSources(b, m)
		dst, _ := NewDecaAgg[int64, int64](m, func(x, y int64) int64 { return x + y },
			decompose.Int64Codec{}, decompose.Int64Codec{}, "")
		b.StartTimer()
		for _, src := range srcs {
			if err := src.Drain(func(k, v int64) bool { dst.Put(k, v); return true }); err != nil {
				b.Fatal(err)
			}
			src.Release()
		}
		b.StopTimer()
		dst.Release()
		b.StartTimer()
	}
}

func buildGroupSources(b *testing.B, m *memory.Manager) []*DecaGroup[int64, int64] {
	b.Helper()
	srcs := make([]*DecaGroup[int64, int64], mergeSources)
	for s := range srcs {
		buf := NewDecaGroup[int64, int64](m, decompose.Int64Codec{}, decompose.Int64Codec{}, "")
		for i := 0; i < recsPerSource; i++ {
			// PageRank-groupBy shape: many values per key, keys mostly
			// unique to one map output.
			buf.Put(int64(s*64+i%64), int64(i))
		}
		srcs[s] = buf
	}
	return srcs
}

func BenchmarkDecaGroupMergeZeroCopy(b *testing.B) {
	m := memory.NewManager(1<<20, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srcs := buildGroupSources(b, m)
		dst := NewDecaGroup[int64, int64](m, decompose.Int64Codec{}, decompose.Int64Codec{}, "")
		b.StartTimer()
		for _, src := range srcs {
			if err := dst.MergeFrom(src); err != nil {
				b.Fatal(err)
			}
			src.Release()
		}
		b.StopTimer()
		dst.Release()
		b.StartTimer()
	}
}

func BenchmarkDecaGroupMergeDrain(b *testing.B) {
	m := memory.NewManager(1<<20, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srcs := buildGroupSources(b, m)
		dst := NewDecaGroup[int64, int64](m, decompose.Int64Codec{}, decompose.Int64Codec{}, "")
		b.StartTimer()
		for _, src := range srcs {
			if err := src.Drain(func(k int64, vs []int64) bool {
				for _, v := range vs {
					dst.Put(k, v)
				}
				return true
			}); err != nil {
				b.Fatal(err)
			}
			src.Release()
		}
		b.StopTimer()
		dst.Release()
		b.StartTimer()
	}
}

// The sort benchmarks time merge *plus* a full DrainSorted of the merged
// buffer: the zero-copy merge defers all sorting to the first drain, so
// merge-only timing would compare unequal amounts of work (the hash-
// shaped benchmarks above have no such asymmetry — both strategies leave
// an equivalent fully-merged state).

func BenchmarkDecaSortMergeZeroCopy(b *testing.B) {
	m := memory.NewManager(1<<20, 0)
	less := func(x, y int64) bool { return x < y }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srcs := make([]*DecaSort[int64, int64], mergeSources)
		for s := range srcs {
			srcs[s] = NewDecaSort[int64, int64](m, less, decompose.Int64Codec{}, decompose.Int64Codec{}, "")
			for j := 0; j < recsPerSource; j++ {
				srcs[s].Put(int64((j*2654435761)%recsPerSource), int64(j))
			}
		}
		dst := NewDecaSort[int64, int64](m, less, decompose.Int64Codec{}, decompose.Int64Codec{}, "")
		b.StartTimer()
		for _, src := range srcs {
			if err := dst.MergeFrom(src); err != nil {
				b.Fatal(err)
			}
			src.Release()
		}
		if err := dst.DrainSorted(func(int64, int64) bool { return true }); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		dst.Release()
		b.StartTimer()
	}
}

func BenchmarkDecaSortMergeDrain(b *testing.B) {
	m := memory.NewManager(1<<20, 0)
	less := func(x, y int64) bool { return x < y }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srcs := make([]*DecaSort[int64, int64], mergeSources)
		for s := range srcs {
			srcs[s] = NewDecaSort[int64, int64](m, less, decompose.Int64Codec{}, decompose.Int64Codec{}, "")
			for j := 0; j < recsPerSource; j++ {
				srcs[s].Put(int64((j*2654435761)%recsPerSource), int64(j))
			}
		}
		dst := NewDecaSort[int64, int64](m, less, decompose.Int64Codec{}, decompose.Int64Codec{}, "")
		b.StartTimer()
		for _, src := range srcs {
			if err := src.DrainSorted(func(k, v int64) bool { dst.Put(k, v); return true }); err != nil {
				b.Fatal(err)
			}
			src.Release()
		}
		if err := dst.DrainSorted(func(int64, int64) bool { return true }); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		dst.Release()
		b.StartTimer()
	}
}

func BenchmarkObjectSortDrain(b *testing.B) {
	less := func(x, y int64) bool { return x < y }
	const n = 50_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		buf := NewObjectSort[int64, int64](less, ObjectSortConfig[int64, int64]{})
		for j := 0; j < n; j++ {
			buf.Put(int64((j*2654435761)%n), int64(j))
		}
		b.StartTimer()
		cnt := 0
		if err := buf.DrainSorted(func(int64, int64) bool { cnt++; return true }); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		buf.Release()
		b.StartTimer()
	}
}

func BenchmarkDecaSortDrain(b *testing.B) {
	m := memory.NewManager(1<<20, 0)
	less := func(x, y int64) bool { return x < y }
	const n = 50_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		buf := NewDecaSort[int64, int64](m, less, decompose.Int64Codec{}, decompose.Int64Codec{}, "")
		for j := 0; j < n; j++ {
			buf.Put(int64((j*2654435761)%n), int64(j))
		}
		b.StartTimer()
		cnt := 0
		if err := buf.DrainSorted(func(int64, int64) bool { cnt++; return true }); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		buf.Release()
		b.StartTimer()
	}
}
