package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: the whole event spine rendered as a JSON
// array chrome://tracing and Perfetto load directly. Executors map to
// trace processes (pid = exec id + 1; pid 0 would collide with the
// tools' "idle" conventions, and the driver's pseudo-exec -1 maps to
// pid 1000). Task attempts become complete ("X") slices on tid = part,
// stage spans live on a dedicated driver-lane process, retries /
// speculation / blacklists / fetch failures are instants ("i"), and GC
// plus shuffle occupancy samples are counter ("C") series.

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

const (
	driverPID    = 1000 // events tagged exec -1: the driver process
	stageLanePID = 1001 // synthetic lane for stage spans
)

func tracePID(exec int32) int64 {
	if exec < 0 {
		return driverPID
	}
	return int64(exec) + 1
}

// WriteTrace renders events as a Chrome trace-event JSON array. Events
// should be in ingest order (View.Events); timestamps are shifted so
// the earliest event is t=0.
func WriteTrace(w io.Writer, events []Event) error {
	var t0 int64
	for _, e := range events {
		if e.Nanos != 0 && (t0 == 0 || e.Nanos < t0) {
			t0 = e.Nanos
		}
	}
	us := func(nanos int64) float64 { return float64(nanos-t0) / 1e3 }

	out := make([]traceEvent, 0, len(events)+16)
	pids := map[int64]string{}
	notePID := func(pid int64, name string) {
		if _, ok := pids[pid]; !ok {
			pids[pid] = name
		}
	}

	type openAttempt struct {
		startNanos  int64
		exec        int32
		speculative bool
	}
	type attemptID struct {
		stage, part, attempt int32
	}
	openAttempts := map[attemptID]openAttempt{}
	type openStage struct {
		beginNanos int64
		key        string
	}
	openStages := map[int32]openStage{}
	stageByKey := map[string]int32{}

	for _, e := range events {
		switch e.Kind {
		case KindTaskStart:
			openAttempts[attemptID{e.Stage, e.Part, e.Attempt}] = openAttempt{
				startNanos: e.Nanos, exec: e.Exec, speculative: e.B != 0,
			}
		case KindTaskFinish:
			id := attemptID{e.Stage, e.Part, e.Attempt}
			start := e.Nanos - e.A // duration rides in A
			if o, ok := openAttempts[id]; ok {
				start = o.startNanos
				delete(openAttempts, id)
			}
			pid := tracePID(e.Exec)
			notePID(pid, fmt.Sprintf("executor %d", e.Exec))
			name := fmt.Sprintf("stage %d part %d a%d", e.Stage, e.Part, e.Attempt)
			args := map[string]any{"stage": e.Stage, "part": e.Part, "attempt": e.Attempt}
			cat := "task"
			if e.B != 0 {
				cat = "task,failed"
				if e.Key != "" {
					args["error"] = e.Key
				}
			}
			out = append(out, traceEvent{
				Name: name, Cat: cat, Ph: "X",
				TS: us(start), Dur: float64(e.A) / 1e3,
				PID: pid, TID: int64(e.Part), Args: args,
			})
		case KindStageBegin:
			openStages[e.Stage] = openStage{beginNanos: e.Nanos, key: e.Key}
			if e.Key != "" {
				stageByKey[e.Key] = e.Stage
			}
		case KindStageVerdict:
			id := e.Stage
			if e.Key != "" {
				if mapped, ok := stageByKey[e.Key]; ok {
					id = mapped
				}
			}
			o, ok := openStages[id]
			if !ok {
				break
			}
			delete(openStages, id)
			name := o.key
			if name == "" {
				name = fmt.Sprintf("stage %d", id)
			}
			notePID(stageLanePID, "stages")
			out = append(out, traceEvent{
				Name: name, Cat: "stage", Ph: "X",
				TS: us(o.beginNanos), Dur: float64(e.Nanos-o.beginNanos) / 1e3,
				PID: stageLanePID, TID: int64(id),
				Args: map[string]any{"verdict": verdictName(true, e.A)},
			})
		case KindTaskRetry, KindTaskSpeculate, KindSpeculativeWon,
			KindExecutorBlacklisted, KindFetchFailed, KindStageAbort, KindStageCommit:
			pid := tracePID(e.Exec)
			notePID(pid, fmt.Sprintf("executor %d", e.Exec))
			args := map[string]any{}
			if e.Stage != 0 || e.Part != 0 {
				args["stage"], args["part"] = e.Stage, e.Part
			}
			if e.Shuffle != 0 {
				args["shuffle"] = e.Shuffle
			}
			if e.Key != "" {
				args["detail"] = e.Key
			}
			scope := "p"
			if e.Kind == KindExecutorBlacklisted {
				scope = "g"
			}
			out = append(out, traceEvent{
				Name: e.Kind.String(), Cat: "event", Ph: "i",
				TS: us(e.Nanos), PID: pid, TID: int64(e.Part),
				S: scope, Args: args,
			})
		case KindGCSample:
			pid := tracePID(e.Exec)
			notePID(pid, fmt.Sprintf("executor %d", e.Exec))
			out = append(out, traceEvent{
				Name: "gc", Cat: "sample", Ph: "C",
				TS: us(e.Nanos), PID: pid, TID: 0,
				Args: map[string]any{
					"gc_cpu_ms":     float64(e.A) / 1e6,
					"heap_live_mib": float64(e.B) / (1 << 20),
				},
			})
		case KindOccupancy:
			pid := tracePID(e.Exec)
			notePID(pid, fmt.Sprintf("executor %d", e.Exec))
			out = append(out, traceEvent{
				Name: fmt.Sprintf("occupancy shuffle %d", e.Shuffle),
				Cat:  "sample", Ph: "C",
				TS: us(e.Nanos), PID: pid, TID: 0,
				Args: map[string]any{
					"used_mib":      float64(e.A) / (1 << 20),
					"footprint_mib": float64(e.B) / (1 << 20),
				},
			})
		}
	}
	// Attempts still open at export time render as zero-duration marks so
	// a mid-run snapshot stays loadable.
	for id, o := range openAttempts {
		pid := tracePID(o.exec)
		notePID(pid, fmt.Sprintf("executor %d", o.exec))
		out = append(out, traceEvent{
			Name: fmt.Sprintf("stage %d part %d a%d (running)", id.stage, id.part, id.attempt),
			Cat:  "task", Ph: "i", TS: us(o.startNanos),
			PID: pid, TID: int64(id.part), S: "t",
		})
	}

	// Name the processes so Perfetto's track labels read as executors.
	meta := make([]traceEvent, 0, len(pids))
	for pid, name := range pids {
		if pid == driverPID {
			name = "driver"
		}
		meta = append(meta, traceEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
	}
	sort.Slice(meta, func(i, j int) bool { return meta[i].PID < meta[j].PID })
	all := append(meta, out...)

	enc := json.NewEncoder(w)
	return enc.Encode(all)
}
