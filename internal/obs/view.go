package obs

import (
	"sort"
	"sync"
)

// View is the driver-side aggregate of the cluster's event streams: the
// driver ingests its own recorder plus every follower's heartbeat
// drains, and the ops endpoints read the result. It keeps a bounded
// ring of raw events (the /trace export) alongside small running
// aggregates (the /stages, /executors and /memory views), so a
// long-running job's ops plane stays O(capacity) no matter how many
// events flow through.
type View struct {
	mu       sync.Mutex
	buf      []Event
	start    int
	n        int
	ingested uint64
	dropped  uint64 // overwritten here, plus drops reported by recorders

	stages map[int32]*stageAgg
	execs  map[int32]*execAgg
	occ    map[int64][]OccupancyPoint
	occCap int
}

// attemptKey identifies one running attempt within a stage.
type attemptKey struct {
	part, attempt int32
}

type stageAgg struct {
	key        string
	begin      int64
	end        int64
	verdict    int64
	verdictSet bool
	started    int64
	finished   int64
	failed     int64
	retried    int64
	running    map[attemptKey]runningAttempt
}

type runningAttempt struct {
	exec        int32
	startNanos  int64
	speculative bool
}

type execAgg struct {
	lastNanos     int64
	gcCPUNanos    int64
	heapLiveBytes int64
	pagesAlloc    int64
	pagesAdopted  int64
	pagesReleased int64
	spillBytes    int64
	serveBytes    int64
	fetchIssued   int64
	fetchServed   int64
	fetchFailed   int64
	fetchBytes    int64
}

// OccupancyPoint is one sample of a shuffle buffer's live bytes vs its
// page footprint — the paper's container-lifetime signal as a series.
type OccupancyPoint struct {
	Nanos     int64 `json:"nanos"`
	Exec      int32 `json:"exec"`
	Used      int64 `json:"used_bytes"`
	Footprint int64 `json:"footprint_bytes"`
}

const defaultViewCapacity = 1 << 16

// NewView returns a view retaining at most capacity raw events
// (default 65536 if capacity <= 0) and a bounded occupancy series per
// shuffle.
func NewView(capacity int) *View {
	if capacity <= 0 {
		capacity = defaultViewCapacity
	}
	return &View{
		buf:    make([]Event, capacity),
		stages: make(map[int32]*stageAgg),
		execs:  make(map[int32]*execAgg),
		occ:    make(map[int64][]OccupancyPoint),
		occCap: 1024,
	}
}

// Ingest folds a batch of events into the view.
func (v *View) Ingest(evs []Event) {
	if v == nil || len(evs) == 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, e := range evs {
		v.ingested++
		if v.n == len(v.buf) {
			v.buf[v.start] = e
			v.start = (v.start + 1) % len(v.buf)
			v.dropped++
		} else {
			v.buf[(v.start+v.n)%len(v.buf)] = e
			v.n++
		}
		v.aggregate(e)
	}
}

// AddDropped accounts ring overwrites that happened upstream (in a
// recorder, before shipping).
func (v *View) AddDropped(n uint64) {
	if v == nil || n == 0 {
		return
	}
	v.mu.Lock()
	v.dropped += n
	v.mu.Unlock()
}

func (v *View) aggregate(e Event) {
	switch e.Kind {
	case KindTaskStart:
		s := v.stage(e.Stage)
		s.started++
		s.running[attemptKey{e.Part, e.Attempt}] = runningAttempt{
			exec: e.Exec, startNanos: e.Nanos, speculative: e.B != 0,
		}
	case KindTaskFinish:
		s := v.stage(e.Stage)
		s.finished++
		if e.B != 0 {
			s.failed++
		}
		delete(s.running, attemptKey{e.Part, e.Attempt})
	case KindTaskRetry:
		v.stage(e.Stage).retried++
	case KindStageBegin:
		s := v.stage(e.Stage)
		s.begin = e.Nanos
		s.key = e.Key
	case KindStageVerdict:
		// Verdicts key by stage name in multiproc; match on Key when the
		// numeric id is absent.
		s := v.stageByKey(e.Stage, e.Key)
		if s != nil {
			s.end = e.Nanos
			s.verdict = e.A
			s.verdictSet = true
		}
	case KindGCSample:
		x := v.exec(e.Exec)
		x.gcCPUNanos = e.A
		x.heapLiveBytes = e.B
	case KindPageAlloc:
		v.exec(e.Exec).pagesAlloc = e.A
	case KindPageAdopt:
		v.exec(e.Exec).pagesAdopted += e.A
	case KindPageRelease:
		v.exec(e.Exec).pagesReleased += e.A
	case KindPageSpill:
		v.exec(e.Exec).spillBytes += e.B
	case KindServe:
		v.exec(e.Exec).serveBytes += e.B
	case KindFetchIssued:
		v.exec(e.Exec).fetchIssued++
	case KindFetchServed:
		x := v.exec(e.Exec)
		x.fetchServed++
		x.fetchBytes += e.B
	case KindFetchFailed:
		v.exec(e.Exec).fetchFailed++
	case KindOccupancy:
		pts := v.occ[e.Shuffle]
		pts = append(pts, OccupancyPoint{Nanos: e.Nanos, Exec: e.Exec, Used: e.A, Footprint: e.B})
		if len(pts) > v.occCap {
			pts = pts[len(pts)-v.occCap:]
		}
		v.occ[e.Shuffle] = pts
	}
	if e.Exec >= -1 {
		x := v.exec(e.Exec)
		if e.Nanos > x.lastNanos {
			x.lastNanos = e.Nanos
		}
	}
}

func (v *View) stage(id int32) *stageAgg {
	s := v.stages[id]
	if s == nil {
		s = &stageAgg{running: make(map[attemptKey]runningAttempt)}
		v.stages[id] = s
	}
	return s
}

func (v *View) stageByKey(id int32, key string) *stageAgg {
	if s, ok := v.stages[id]; ok && (key == "" || s.key == key || s.key == "") {
		if s.key == "" {
			s.key = key
		}
		return s
	}
	if key == "" {
		return v.stage(id)
	}
	for _, s := range v.stages {
		if s.key == key {
			return s
		}
	}
	s := v.stage(id)
	s.key = key
	return s
}

// Events returns the retained raw events in ingest order.
func (v *View) Events() []Event {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]Event, v.n)
	for i := 0; i < v.n; i++ {
		out[i] = v.buf[(v.start+i)%len(v.buf)]
	}
	return out
}

// Dropped reports events lost to ring overwrites (here or upstream).
func (v *View) Dropped() uint64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.dropped
}

// AttemptState is one in-flight attempt in a stage summary.
type AttemptState struct {
	Part        int32 `json:"part"`
	Attempt     int32 `json:"attempt"`
	Exec        int32 `json:"exec"`
	StartNanos  int64 `json:"start_nanos"`
	Speculative bool  `json:"speculative,omitempty"`
}

// StageSummary is the /stages row for one scheduled stage.
type StageSummary struct {
	Stage      int32          `json:"stage"`
	Key        string         `json:"key,omitempty"`
	BeginNanos int64          `json:"begin_nanos,omitempty"`
	EndNanos   int64          `json:"end_nanos,omitempty"`
	Verdict    string         `json:"verdict,omitempty"`
	Started    int64          `json:"attempts_started"`
	Finished   int64          `json:"attempts_finished"`
	Failed     int64          `json:"attempts_failed"`
	Retried    int64          `json:"attempts_retried"`
	Running    []AttemptState `json:"running,omitempty"`
}

// Verdict codes carried in KindStageVerdict.A.
const (
	VerdictOK    = 0
	VerdictAbort = 1
	VerdictRetry = 2
)

func verdictName(set bool, code int64) string {
	if !set {
		return ""
	}
	switch code {
	case VerdictOK:
		return "ok"
	case VerdictAbort:
		return "abort"
	case VerdictRetry:
		return "retry"
	}
	return "unknown"
}

// Stages summarizes every stage seen so far, ordered by stage id.
func (v *View) Stages() []StageSummary {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]StageSummary, 0, len(v.stages))
	for id, s := range v.stages {
		sum := StageSummary{
			Stage: id, Key: s.key, BeginNanos: s.begin, EndNanos: s.end,
			Verdict: verdictName(s.verdictSet, s.verdict),
			Started: s.started, Finished: s.finished,
			Failed: s.failed, Retried: s.retried,
		}
		for k, r := range s.running {
			sum.Running = append(sum.Running, AttemptState{
				Part: k.part, Attempt: k.attempt, Exec: r.exec,
				StartNanos: r.startNanos, Speculative: r.speculative,
			})
		}
		sort.Slice(sum.Running, func(i, j int) bool {
			if sum.Running[i].Part != sum.Running[j].Part {
				return sum.Running[i].Part < sum.Running[j].Part
			}
			return sum.Running[i].Attempt < sum.Running[j].Attempt
		})
		out = append(out, sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// ExecObs is the per-executor slice of the event stream: data-plane and
// memory activity plus the latest GC sample.
type ExecObs struct {
	Exec          int32 `json:"exec"`
	LastNanos     int64 `json:"last_event_nanos,omitempty"`
	GCCPUNanos    int64 `json:"gc_cpu_nanos,omitempty"`
	HeapLiveBytes int64 `json:"heap_live_bytes,omitempty"`
	PagesAlloc    int64 `json:"pages_allocated,omitempty"`
	PagesAdopted  int64 `json:"pages_adopted,omitempty"`
	PagesReleased int64 `json:"pages_released,omitempty"`
	SpillBytes    int64 `json:"spill_bytes,omitempty"`
	ServeBytes    int64 `json:"serve_bytes,omitempty"`
	FetchIssued   int64 `json:"fetch_issued,omitempty"`
	FetchServed   int64 `json:"fetch_served,omitempty"`
	FetchFailed   int64 `json:"fetch_failed,omitempty"`
	FetchBytes    int64 `json:"fetch_bytes,omitempty"`
}

// Executors summarizes per-executor observations, ordered by id (the
// driver's pseudo-executor -1 first when present).
func (v *View) Executors() []ExecObs {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]ExecObs, 0, len(v.execs))
	for id, x := range v.execs {
		out = append(out, ExecObs{
			Exec: id, LastNanos: x.lastNanos,
			GCCPUNanos: x.gcCPUNanos, HeapLiveBytes: x.heapLiveBytes,
			PagesAlloc: x.pagesAlloc, PagesAdopted: x.pagesAdopted,
			PagesReleased: x.pagesReleased, SpillBytes: x.spillBytes,
			ServeBytes: x.serveBytes, FetchIssued: x.fetchIssued,
			FetchServed: x.fetchServed, FetchFailed: x.fetchFailed,
			FetchBytes: x.fetchBytes,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Exec < out[j].Exec })
	return out
}

// Occupancy returns the retained per-shuffle occupancy series.
func (v *View) Occupancy() map[int64][]OccupancyPoint {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[int64][]OccupancyPoint, len(v.occ))
	for id, pts := range v.occ {
		cp := make([]OccupancyPoint, len(pts))
		copy(cp, pts)
		out[id] = cp
	}
	return out
}

func (v *View) exec(id int32) *execAgg {
	x := v.execs[id]
	if x == nil {
		x = &execAgg{}
		v.execs[id] = x
	}
	return x
}
