// Package obs is the cluster observability spine: typed, timestamped
// events recorded into per-process ring buffers, shipped to the driver
// over the existing ctl heartbeat frames, and aggregated there into a
// rolling cluster-wide view (see View) that backs the HTTP ops plane
// and the Chrome trace export.
//
// The package is deliberately stdlib-only and imports nothing from the
// engine, so every layer (memory, transport, sched, ctl, engine) can
// emit events without cycles. Events carry only plain identifiers —
// executor ids, stage ids, page counts, byte sizes — never memory.Ptr
// or *memory.Group: instrumentation must not extend object lifetimes
// (enforced by deca-vet's ptrescape analyzer).
package obs

import (
	"sync"
	"time"
)

// Kind discriminates event payloads. The numeric values cross the ctl
// wire; append new kinds at the end, never renumber.
type Kind uint8

const (
	KindNone Kind = iota
	// Task attempt lifecycle (driver-side, from the scheduler).
	KindTaskStart      // Exec/Stage/Part/Attempt; B=1 if speculative
	KindTaskFinish     // same ids; A=duration ns; B=0 ok, 1 failed; Key=error
	KindTaskRetry      // Exec/Stage/Part
	KindTaskSpeculate  // Exec: a speculative duplicate launched there
	KindSpeculativeWon // Exec: the duplicate beat the primary
	KindExecutorBlacklisted
	// Stage lifecycle (driver-side, from the exchange loop and the
	// multiproc stage-commit protocol).
	KindStageBegin   // Stage; Key=stage key
	KindStageVerdict // Key=stage key; A=verdict (0 ok, 1 abort, 2 retry)
	KindStageCommit  // Shuffle; A=map tasks, B=reduce tasks
	KindStageAbort   // Shuffle
	// Data plane (executor-side).
	KindFetchIssued // Exec=fetcher; Shuffle; Part=reduce part; A=map task
	KindFetchServed // Exec=fetcher; Shuffle; Part=reduce part; A=map task; B=bytes
	KindFetchFailed // Exec=fetcher; Shuffle; Part=reduce part; A=map task; Key=error
	KindServe       // Exec=server; Shuffle; Part=reduce part; B=bytes served
	// Memory manager (executor-side).
	KindPageAlloc   // Exec; A=pages fresh-allocated (cumulative), B=page bytes
	KindPageAdopt   // Exec; A=pages adopted in one zero-copy merge
	KindPageSpill   // Exec; B=bytes spilled
	KindPageRelease // Exec; A=pages returned to the pool
	// Periodic samples.
	KindGCSample  // Exec; A=cumulative GC CPU ns; B=heap live bytes
	KindOccupancy // Exec; Shuffle; A=used bytes; B=footprint bytes
	kindCount
)

var kindNames = [...]string{
	KindNone:                "none",
	KindTaskStart:           "task_start",
	KindTaskFinish:          "task_finish",
	KindTaskRetry:           "task_retry",
	KindTaskSpeculate:       "task_speculate",
	KindSpeculativeWon:      "speculative_won",
	KindExecutorBlacklisted: "executor_blacklisted",
	KindStageBegin:          "stage_begin",
	KindStageVerdict:        "stage_verdict",
	KindStageCommit:         "stage_commit",
	KindStageAbort:          "stage_abort",
	KindFetchIssued:         "fetch_issued",
	KindFetchServed:         "fetch_served",
	KindFetchFailed:         "fetch_failed",
	KindServe:               "serve",
	KindPageAlloc:           "page_alloc",
	KindPageAdopt:           "page_adopt",
	KindPageSpill:           "page_spill",
	KindPageRelease:         "page_release",
	KindGCSample:            "gc_sample",
	KindOccupancy:           "occupancy",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one observation. The field meanings are per-Kind (see the
// Kind constants); unused fields are zero. Seq is assigned by the
// recording Recorder and is unique and increasing per process.
type Event struct {
	Seq     uint64
	Kind    Kind
	Nanos   int64 // unix nanoseconds at record time
	Exec    int32 // executor id; -1 = the driver itself
	Stage   int32
	Part    int32
	Attempt int32
	Shuffle int64
	A, B    int64
	Key     string
}

// Time returns the event timestamp.
func (e Event) Time() time.Time { return time.Unix(0, e.Nanos) }

// DefaultCapacity is the ring size a zero engine.Config gets: at task /
// page / sample granularity a few thousand events cover the shipping
// interval with plenty of slack, and the bound is what matters.
const DefaultCapacity = 4096

// Recorder is a bounded ring of events. A nil *Recorder is the
// disabled state: Record on nil is a single predictable branch, so
// instrumentation seams cost near nothing when observability is off.
//
// Writers call Record; the ctl heartbeat loop calls Drain to ship the
// backlog; when the ring overflows before a drain the oldest events
// are overwritten and counted in Dropped.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest event
	n       int // live events in buf
	seq     uint64
	dropped uint64
}

// NewRecorder returns a recorder holding at most capacity events
// (DefaultCapacity if capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Enabled reports whether events are being collected.
func (r *Recorder) Enabled() bool { return r != nil }

// Record stamps e with a sequence number and the current time (unless
// the caller already set Nanos) and appends it, overwriting the oldest
// event when full. Safe on a nil receiver.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if e.Nanos == 0 {
		e.Nanos = time.Now().UnixNano()
	}
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	if r.n == len(r.buf) {
		r.buf[r.start] = e
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	} else {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
	}
	r.mu.Unlock()
}

// Drain removes and returns up to max oldest events (all of them if
// max <= 0). Returns nil when empty or on a nil receiver.
func (r *Recorder) Drain(max int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if max > 0 && n > max {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	r.start = (r.start + n) % len(r.buf)
	r.n -= n
	return out
}

// Len reports the undrained backlog.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped reports how many events were overwritten before being
// drained.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
