package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestRecorderNilIsDisabled(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	r.Record(Event{Kind: KindTaskStart}) // must not panic
	if got := r.Drain(0); got != nil {
		t.Errorf("nil drain = %v, want nil", got)
	}
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Error("nil recorder reports state")
	}
}

func TestRecorderRingOverwritesOldest(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(Event{Kind: KindPageAlloc, A: int64(i)})
	}
	if got := r.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
	evs := r.Drain(0)
	if len(evs) != 4 {
		t.Fatalf("drained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.A != int64(i+2) {
			t.Errorf("event %d: A = %d, want %d (oldest overwritten)", i, e.A, i+2)
		}
		if e.Seq == 0 || e.Nanos == 0 {
			t.Errorf("event %d missing seq/timestamp: %+v", i, e)
		}
	}
	if r.Len() != 0 {
		t.Errorf("backlog after full drain = %d", r.Len())
	}
}

func TestRecorderDrainMax(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: KindFetchIssued, A: int64(i)})
	}
	first := r.Drain(2)
	if len(first) != 2 || first[0].A != 0 || first[1].A != 1 {
		t.Fatalf("Drain(2) = %+v, want events 0,1", first)
	}
	rest := r.Drain(0)
	if len(rest) != 3 || rest[0].A != 2 {
		t.Fatalf("second drain = %+v, want events 2..4", rest)
	}
}

func TestRecorderConcurrentRecord(t *testing.T) {
	r := NewRecorder(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: KindPageRelease})
			}
		}()
	}
	wg.Wait()
	total := uint64(len(r.Drain(0))) + r.Dropped()
	if total != 800 {
		t.Errorf("drained+dropped = %d, want 800", total)
	}
}

func TestViewStageAggregation(t *testing.T) {
	v := NewView(64)
	v.Ingest([]Event{
		{Kind: KindStageBegin, Stage: 3, Key: "x/1/0/0/map", Nanos: 100},
		{Kind: KindTaskStart, Stage: 3, Part: 0, Attempt: 1, Exec: 0, Nanos: 110},
		{Kind: KindTaskStart, Stage: 3, Part: 1, Attempt: 1, Exec: 1, Nanos: 111},
		{Kind: KindTaskFinish, Stage: 3, Part: 0, Attempt: 1, Exec: 0, A: 50, Nanos: 160},
		{Kind: KindTaskRetry, Stage: 3, Part: 1, Nanos: 170},
		{Kind: KindStageVerdict, Key: "x/1/0/0/map", A: VerdictOK, Nanos: 200},
	})
	stages := v.Stages()
	if len(stages) != 1 {
		t.Fatalf("got %d stages, want 1", len(stages))
	}
	s := stages[0]
	if s.Stage != 3 || s.Key != "x/1/0/0/map" {
		t.Errorf("stage identity = %d %q", s.Stage, s.Key)
	}
	if s.Started != 2 || s.Finished != 1 || s.Retried != 1 {
		t.Errorf("counts = started %d finished %d retried %d", s.Started, s.Finished, s.Retried)
	}
	if s.Verdict != "ok" || s.EndNanos != 200 {
		t.Errorf("verdict %q end %d, want ok/200", s.Verdict, s.EndNanos)
	}
	if len(s.Running) != 1 || s.Running[0].Part != 1 {
		t.Errorf("running = %+v, want part 1 only", s.Running)
	}
}

func TestViewExecutorAndOccupancy(t *testing.T) {
	v := NewView(64)
	v.Ingest([]Event{
		{Kind: KindPageAlloc, Exec: 0, A: 7, Nanos: 10},
		{Kind: KindPageSpill, Exec: 0, B: 4096, Nanos: 20},
		{Kind: KindFetchServed, Exec: 1, B: 1024, Nanos: 30},
		{Kind: KindGCSample, Exec: 1, A: 5e6, B: 1 << 20, Nanos: 40},
		{Kind: KindOccupancy, Exec: 0, Shuffle: 9, A: 100, B: 400, Nanos: 50},
		{Kind: KindOccupancy, Exec: 0, Shuffle: 9, A: 200, B: 400, Nanos: 60},
	})
	execs := v.Executors()
	if len(execs) != 2 {
		t.Fatalf("got %d executors, want 2", len(execs))
	}
	if execs[0].PagesAlloc != 7 || execs[0].SpillBytes != 4096 {
		t.Errorf("exec 0 = %+v", execs[0])
	}
	if execs[1].FetchBytes != 1024 || execs[1].GCCPUNanos != 5e6 {
		t.Errorf("exec 1 = %+v", execs[1])
	}
	occ := v.Occupancy()
	if pts := occ[9]; len(pts) != 2 || pts[1].Used != 200 {
		t.Errorf("occupancy series = %+v", occ)
	}
}

func TestViewRingBound(t *testing.T) {
	v := NewView(8)
	evs := make([]Event, 20)
	for i := range evs {
		evs[i] = Event{Kind: KindServe, Exec: 0, B: 1, Nanos: int64(i + 1)}
	}
	v.Ingest(evs)
	if got := len(v.Events()); got != 8 {
		t.Errorf("retained %d events, want 8", got)
	}
	if v.Dropped() != 12 {
		t.Errorf("dropped = %d, want 12", v.Dropped())
	}
	// Aggregates still fold every event, not just the retained window.
	if x := v.Executors(); len(x) != 1 || x[0].ServeBytes != 20 {
		t.Errorf("serve bytes = %+v, want 20", x)
	}
}

func TestWriteTraceWellFormed(t *testing.T) {
	events := []Event{
		{Kind: KindStageBegin, Stage: 1, Key: "x/0/0/0/map", Nanos: 1000},
		{Kind: KindTaskStart, Stage: 1, Part: 0, Attempt: 1, Exec: 0, Nanos: 1100},
		{Kind: KindTaskFinish, Stage: 1, Part: 0, Attempt: 1, Exec: 0, A: 900, Nanos: 2000},
		{Kind: KindTaskRetry, Stage: 1, Part: 1, Exec: 1, Nanos: 2100},
		{Kind: KindExecutorBlacklisted, Exec: 1, Nanos: 2200},
		{Kind: KindStageVerdict, Stage: 1, Key: "x/0/0/0/map", A: VerdictOK, Nanos: 2500},
		{Kind: KindGCSample, Exec: 0, A: 3e6, B: 2 << 20, Nanos: 2600},
		{Kind: KindOccupancy, Exec: 0, Shuffle: 4, A: 10, B: 40, Nanos: 2700},
		{Kind: KindTaskStart, Stage: 1, Part: 2, Attempt: 1, Exec: 0, Nanos: 2800}, // still open
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("trace output is not a JSON array: %v", err)
	}
	var haveX, haveStage, haveInstant, haveCounter, haveMeta bool
	for _, e := range arr {
		switch e["ph"] {
		case "X":
			if e["cat"] == "stage" {
				haveStage = true
			} else {
				haveX = true
			}
		case "i":
			haveInstant = true
		case "C":
			haveCounter = true
		case "M":
			haveMeta = true
		}
	}
	if !haveX || !haveStage || !haveInstant || !haveCounter || !haveMeta {
		t.Errorf("trace missing shapes: task=%v stage=%v instant=%v counter=%v meta=%v",
			haveX, haveStage, haveInstant, haveCounter, haveMeta)
	}
}

func TestWriteTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var arr []any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("empty trace is not a JSON array: %v", err)
	}
}
