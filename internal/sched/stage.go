package sched

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"
)

// stage is one RunStage invocation: stage-local worker slots, per-task
// state, and the successful-attempt durations the straggler monitor
// thresholds against.
type stage struct {
	c    *Cluster
	id   int
	opts StageOptions
	sems []chan struct{}

	tasks []*taskState
	wg    sync.WaitGroup // primary attempt chains
	// specWg tracks speculative attempts separately: the monitor launches
	// them while RunStage may already be in wg.Wait, and adding to a
	// WaitGroup concurrently with a Wait that can hit zero is a misuse.
	specWg sync.WaitGroup

	durMu     sync.Mutex
	durations []time.Duration
	doneCount int
}

// taskState is one task's state shared across its attempts. The task
// lifecycle: attempts run until one succeeds (done) or the primary chain
// exhausts its budget with no speculative attempt still in flight
// (failed). done and failed are terminal and mutually exclusive.
type taskState struct {
	part int

	mu       sync.Mutex
	done     bool
	failed   bool
	err      error
	doneCh   chan struct{} // closed on either terminal state (attempt cancel signal)
	attempts int           // attempt numbers issued (retries + speculation)

	running      int       // attempts currently executing a body
	primaryExec  int       // executor of the running primary attempt
	runningSince time.Time // when the running primary attempt started

	specLaunched bool
	specWait     chan struct{} // closed when the speculative attempt finishes
}

func (t *taskState) isDone() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// issueAttempt hands out the next attempt number (1-based, unique across
// the task's retries and speculative duplicates).
func (t *taskState) issueAttempt() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.attempts++
	return t.attempts
}

// complete marks the task done; it reports whether this caller won (a
// twin attempt may have completed it first).
func (t *taskState) complete() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done || t.failed {
		return false
	}
	t.done = true
	close(t.doneCh)
	return true
}

// fail marks the task terminally failed with err.
func (t *taskState) fail(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done || t.failed {
		return
	}
	t.failed = true
	t.err = err
	close(t.doneCh)
}

// noteRunning/noteStopped maintain the straggler monitor's view of the
// task: how many attempts are executing, and since when the primary runs.
func (t *taskState) noteRunning(exec int, speculative bool, start time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.running++
	if !speculative {
		t.primaryExec = exec
		t.runningSince = start
	}
}

func (t *taskState) noteStopped() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.running--
}

// primary runs a task's attempt chain: place, run, and on failure retry
// within the budget. idx indexes s.tasks; the task's partition id may
// differ on sparse (lineage-repair) stages. If a speculative duplicate is
// still in flight when the budget runs out, the verdict waits for it —
// the duplicate may yet complete the task.
func (s *stage) primary(idx int, body func(Attempt) error) {
	defer s.wg.Done()
	t := s.tasks[idx]
	maxAttempts := s.c.conf.MaxTaskRetries + 1
	var lastErr error
	var lastExec, lastAttempt int
	attempts := 0
	for try := 1; try <= maxAttempts; try++ {
		if t.isDone() {
			return
		}
		exec, probe := s.c.placeForAttempt(t.part)
		attempt := t.issueAttempt()
		if try > 1 {
			s.c.conf.Hooks.TaskRetried(exec)
		}
		err := s.runAttempt(t, attempt, exec, false, body)
		if probe {
			s.c.probeResult(exec, err == nil)
		}
		if err == nil || t.isDone() {
			return
		}
		lastErr, lastExec, lastAttempt = err, exec, attempt
		attempts = try
	}
	t.mu.Lock()
	specWait := t.specWait
	t.mu.Unlock()
	if specWait != nil {
		<-specWait
		if t.isDone() {
			return
		}
	}
	t.fail(fmt.Errorf("task %d: failed after %d attempts, final attempt %d on executor %d: %w",
		t.part, attempts, lastAttempt, lastExec, lastErr))
}

// speculative runs a straggler's single duplicate attempt. Its error (if
// any) is not retried and does not consume the task's budget — the
// primary chain owns that — but it is counted and held against the
// executor like any failed attempt.
func (s *stage) speculative(t *taskState, avoid int, body func(Attempt) error) {
	defer s.specWg.Done()
	defer close(t.specWait)
	s.c.mu.Lock()
	exec := s.c.placeLocked(t.part, avoid)
	s.c.mu.Unlock()
	attempt := t.issueAttempt()
	s.c.conf.Hooks.SpeculativeLaunched(exec)
	_ = s.runAttempt(t, attempt, exec, true, body)
}

// runAttempt executes one attempt: acquire the executor's stage-local
// slot, run the injected-fault hooks around the body, and settle the
// outcome. A nil return means the task is done (this attempt won or a
// twin did); a non-nil return is this attempt's failure, already counted.
func (s *stage) runAttempt(t *taskState, attempt, exec int, speculative bool, body func(Attempt) error) error {
	s.sems[exec] <- struct{}{}
	defer func() { <-s.sems[exec] }()
	if t.isDone() {
		return nil // the twin won while this attempt queued
	}
	s.c.conf.Hooks.TaskStarted(exec)
	observer, _ := s.c.conf.Hooks.(AttemptObserver)
	if observer != nil {
		observer.AttemptStarted(s.id, t.part, attempt, exec, speculative)
	}
	a := Attempt{
		Stage: s.id, Part: t.part, Attempt: attempt, Exec: exec,
		Speculative: speculative, cancel: t.doneCh,
	}
	start := time.Now()
	t.noteRunning(exec, speculative, start)
	err := s.attemptBody(a, body)
	dur := time.Since(start)
	t.noteStopped()
	if observer != nil {
		observer.AttemptFinished(s.id, t.part, attempt, exec, speculative, dur, err)
	}
	if err == nil {
		if t.complete() {
			s.recordDuration(dur)
			if speculative {
				s.c.conf.Hooks.SpeculativeWon(exec)
			}
		}
		return nil
	}
	if errors.Is(err, ErrCanceled) && t.isDone() {
		return nil // the loser of a speculative race bailed out cleanly
	}
	s.c.conf.Hooks.TaskFailed(exec)
	s.c.recordFailure(exec)
	return err
}

// attemptBody wraps the body in the fault-injection hooks. AfterAttempt
// faults — "the executor died after its side effects landed" — only fire
// on speculatable stages, whose bodies are idempotent under re-execution
// (map-output re-registration displaces and releases). Reduce attempts
// consume single-consumer fetches and action attempts fold into shared
// result slots, so re-running a *completed* one is either doomed or
// double-counts; faulting them after success would guarantee job failure
// rather than exercise recovery.
func (s *stage) attemptBody(a Attempt, body func(Attempt) error) error {
	if f := s.c.conf.Faults; f != nil {
		if err := f.BeforeAttempt(a.Stage, a.Part, a.Attempt, a.Exec, a.cancel); err != nil {
			return err
		}
	}
	if err := body(a); err != nil {
		return err
	}
	if f := s.c.conf.Faults; f != nil && s.opts.Speculatable {
		if err := f.AfterAttempt(a.Stage, a.Part, a.Attempt, a.Exec); err != nil {
			return err
		}
	}
	return nil
}

// recordDuration logs a winning attempt's runtime for the straggler
// threshold.
func (s *stage) recordDuration(d time.Duration) {
	s.durMu.Lock()
	s.durations = append(s.durations, d)
	s.doneCount++
	s.durMu.Unlock()
}

// monitor is the straggler watchdog for speculatable stages: once the
// configured quantile of tasks has finished, any task whose current
// primary attempt has been running longer than Multiplier × the median
// successful runtime (floored at MinRuntime) gets one speculative
// duplicate on another executor.
func (s *stage) monitor(stop <-chan struct{}, done chan<- struct{}, body func(Attempt) error) {
	defer close(done)
	spec := s.c.conf.Speculation
	ticker := time.NewTicker(spec.Interval)
	defer ticker.Stop()
	need := int(math.Ceil(spec.Quantile * float64(len(s.tasks))))
	if need < 1 {
		need = 1
	}
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			s.maybeSpeculate(need, body)
		}
	}
}

func (s *stage) maybeSpeculate(need int, body func(Attempt) error) {
	spec := s.c.conf.Speculation
	s.durMu.Lock()
	done := s.doneCount
	durs := slices.Clone(s.durations)
	s.durMu.Unlock()
	if done < need || done >= len(s.tasks) || len(durs) == 0 {
		return
	}
	slices.Sort(durs)
	median := durs[len(durs)/2]
	threshold := time.Duration(spec.Multiplier * float64(median))
	if threshold < spec.MinRuntime {
		threshold = spec.MinRuntime
	}
	now := time.Now()
	for _, t := range s.tasks {
		t.mu.Lock()
		// A candidate has a primary attempt running past the threshold and
		// no duplicate yet.
		launch := !t.done && !t.failed && !t.specLaunched &&
			t.running > 0 && now.Sub(t.runningSince) > threshold
		avoid := t.primaryExec
		if launch {
			t.specLaunched = true
			t.specWait = make(chan struct{})
		}
		t.mu.Unlock()
		if launch {
			s.specWg.Add(1)
			go s.speculative(t, avoid, body)
		}
	}
}
