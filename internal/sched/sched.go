// Package sched is the fault-tolerant task scheduler behind the engine's
// stages. It replaces the engine's original inline runTasks loop with a
// Spark-shaped recovery model: every (stage, partition) runs as a chain of
// task *attempts* with a per-task retry budget; repeated attempt failures
// on one executor blacklist it cluster-wide, after which placement
// re-routes that executor's partitions to the surviving ones (with an
// optional timed probation that lets a blacklisted executor earn its way
// back); and stages whose tasks are safe to duplicate — map stages, whose
// side effect is map-output registration replacing idempotently, and
// reduce stages under the engine's stage-commit shuffle protocol, whose
// fetches are non-consuming — can launch a speculative copy of straggler
// tasks past a quantile-based runtime threshold, the loser being
// cancelled cooperatively.
//
// The package is engine-agnostic: it schedules opaque attempt bodies over
// integer executor ids. The engine adapts bodies to its Executor objects,
// mirrors scheduler events into its metrics through Hooks, and wires the
// deterministic fault-injection harness (internal/chaos) in through the
// FaultInjector seam, so every recovery path is testable without real
// faults.
package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCanceled is returned by attempt bodies (and fault injectors) that
// observed their cancellation signal — the task's twin attempt already
// completed it. The scheduler treats it as a clean exit, not a failure:
// it is not counted, not retried, and not held against the executor.
var ErrCanceled = errors.New("sched: attempt canceled (task completed by a twin attempt)")

// Hooks observes scheduler events. The engine implements it to mirror
// events into cluster- and executor-level metrics. All methods may be
// called concurrently.
type Hooks interface {
	// TaskStarted fires when an attempt begins executing on an executor
	// (after it acquired a worker slot) — once per attempt, so task counts
	// measure attempts, including retries and speculative duplicates.
	TaskStarted(exec int)
	// TaskFailed fires once per failed attempt, on the executor that ran it.
	TaskFailed(exec int)
	// TaskRetried fires when a retry attempt is launched after a failure.
	TaskRetried(exec int)
	// SpeculativeLaunched fires when a straggler's duplicate is launched.
	SpeculativeLaunched(exec int)
	// SpeculativeWon fires when a speculative attempt completes its task
	// before the original.
	SpeculativeWon(exec int)
	// ExecutorBlacklisted fires when the cluster stops placing work on an
	// executor.
	ExecutorBlacklisted(exec int)
}

// AttemptObserver is an optional extension of Hooks: an implementation
// that also satisfies this interface additionally receives per-attempt
// lifecycle callbacks carrying the full task identity and timing — the
// seam the engine's observability event spine hangs off. It is checked
// by type assertion on Config.Hooks, so existing Hooks implementations
// keep working unchanged. Both methods may be called concurrently.
type AttemptObserver interface {
	// AttemptStarted fires right before an attempt body runs (after the
	// worker slot was acquired).
	AttemptStarted(stage, part, attempt, exec int, speculative bool)
	// AttemptFinished fires when the attempt body returns. err is nil on
	// success; a finished attempt whose task was already completed by a
	// twin still reports here (with its own outcome).
	AttemptFinished(stage, part, attempt, exec int, speculative bool, d time.Duration, err error)
}

// nopHooks is the default observer.
type nopHooks struct{}

func (nopHooks) TaskStarted(int)         {}
func (nopHooks) TaskFailed(int)          {}
func (nopHooks) TaskRetried(int)         {}
func (nopHooks) SpeculativeLaunched(int) {}
func (nopHooks) SpeculativeWon(int)      {}
func (nopHooks) ExecutorBlacklisted(int) {}

// FaultInjector is the seam for deterministic fault injection
// (internal/chaos implements it). Both methods may return an injected
// error; BeforeAttempt may also block (an injected straggler delay), in
// which case it must unblock when cancel closes and return ErrCanceled.
type FaultInjector interface {
	// BeforeAttempt runs before the attempt body.
	BeforeAttempt(stage, part, attempt, exec int, cancel <-chan struct{}) error
	// AfterAttempt runs after a successful attempt body, on speculatable
	// stages only (their side effects are idempotent under re-execution);
	// an error fails the attempt *after* its side effects landed (the
	// "executor died before reporting success" case — the retry's
	// re-registration then displaces the completed attempt's outputs).
	AfterAttempt(stage, part, attempt, exec int) error
}

// Speculation tunes straggler duplication for stages that allow it.
type Speculation struct {
	// Enabled turns straggler speculation on (default off: it duplicates
	// work).
	Enabled bool
	// Quantile is the fraction of a stage's tasks that must have finished
	// before any straggler is duplicated (0 = 0.75).
	Quantile float64
	// Multiplier scales the median successful-attempt runtime into the
	// straggler threshold (0 = 1.5).
	Multiplier float64
	// MinRuntime floors the straggler threshold, so microsecond tasks do
	// not speculate on scheduling noise (0 = 30ms).
	MinRuntime time.Duration
	// Interval is the straggler-monitor tick (0 = 2ms).
	Interval time.Duration
}

func (s Speculation) withDefaults() Speculation {
	if s.Quantile <= 0 || s.Quantile > 1 {
		s.Quantile = 0.75
	}
	if s.Multiplier <= 0 {
		s.Multiplier = 1.5
	}
	if s.MinRuntime <= 0 {
		s.MinRuntime = 30 * time.Millisecond
	}
	if s.Interval <= 0 {
		s.Interval = 2 * time.Millisecond
	}
	return s
}

// Config sizes a Cluster.
type Config struct {
	// NumExecutors is the executor count (placement domain).
	NumExecutors int
	// SlotsPerExecutor bounds concurrently running attempts per executor
	// per stage (stage-local slots: nested stages never deadlock against
	// the slots their parents hold).
	SlotsPerExecutor int
	// MaxTaskRetries is the number of retry attempts each task gets after
	// its first failure (so a task runs at most MaxTaskRetries+1 times).
	// Negative means no retries.
	MaxTaskRetries int
	// MaxExecutorFailures blacklists an executor once this many attempts
	// have failed on it. 0 disables blacklisting. The last healthy
	// executor is never blacklisted.
	MaxExecutorFailures int
	// BlacklistProbationAfter, when > 0, gives a blacklisted executor a
	// probation probe after that long on the blacklist: the next primary
	// attempt placed while a probe is due runs there. A successful probe
	// reinstates the executor (failure count reset); a failed one
	// re-blacklists it and restarts the probation clock. 0 (the default)
	// keeps blacklists permanent.
	BlacklistProbationAfter time.Duration
	// Speculation tunes straggler duplication.
	Speculation Speculation
	// Hooks observes scheduler events (nil = none).
	Hooks Hooks
	// Faults is the fault-injection seam (nil = no injected faults).
	Faults FaultInjector
}

func (c Config) withDefaults() Config {
	if c.NumExecutors <= 0 {
		c.NumExecutors = 1
	}
	if c.SlotsPerExecutor <= 0 {
		c.SlotsPerExecutor = 1
	}
	if c.MaxTaskRetries < 0 {
		c.MaxTaskRetries = 0
	}
	if c.Hooks == nil {
		c.Hooks = nopHooks{}
	}
	c.Speculation = c.Speculation.withDefaults()
	return c
}

// Cluster holds the scheduler state that outlives a single stage:
// executor health (failure counts, blacklist) and the stage id counter.
// Placement policy lives here so the engine's cache-block affinity and
// the stage scheduler always agree on where a partition runs.
type Cluster struct {
	conf      Config
	nextStage atomic.Int64

	mu          sync.Mutex
	failures    []int
	blacklisted []bool
	numHealthy  int
	// Probation bookkeeping (BlacklistProbationAfter > 0): when each
	// executor was blacklisted, and whether a probe attempt is in flight.
	blacklistedAt []time.Time
	probing       []bool
}

// NewCluster builds a cluster with every executor healthy.
func NewCluster(conf Config) *Cluster {
	conf = conf.withDefaults()
	return &Cluster{
		conf:          conf,
		failures:      make([]int, conf.NumExecutors),
		blacklisted:   make([]bool, conf.NumExecutors),
		numHealthy:    conf.NumExecutors,
		blacklistedAt: make([]time.Time, conf.NumExecutors),
		probing:       make([]bool, conf.NumExecutors),
	}
}

// Place is the affinity rule: partition p lives on executor p mod N while
// that executor is healthy. When its home executor is blacklisted, p is
// re-placed deterministically over the healthy executors; partitions
// whose homes are healthy never move, so surviving executors keep their
// cache locality.
//
//deca:pure
func (c *Cluster) Place(part int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.placeLocked(part, -1)
}

// placeLocked resolves placement, optionally avoiding one executor (a
// speculative duplicate should not run beside the attempt it is racing).
//
//deca:pure
func (c *Cluster) placeLocked(part, avoid int) int {
	n := c.conf.NumExecutors
	home := part % n
	if !c.blacklisted[home] && home != avoid {
		return home
	}
	candidates := make([]int, 0, n)
	for e := 0; e < n; e++ {
		if !c.blacklisted[e] && e != avoid {
			candidates = append(candidates, e)
		}
	}
	if len(candidates) == 0 {
		// Only the avoided executor is healthy; use it anyway.
		for e := 0; e < n; e++ {
			if !c.blacklisted[e] {
				return e
			}
		}
		return home // unreachable: the last healthy executor is never blacklisted
	}
	return candidates[part%len(candidates)]
}

// Blacklisted reports whether the executor is blacklisted.
func (c *Cluster) Blacklisted(exec int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blacklisted[exec]
}

// NumBlacklisted returns how many executors are blacklisted.
func (c *Cluster) NumBlacklisted() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conf.NumExecutors - c.numHealthy
}

// Blacklist removes the executor from placement immediately (an operator
// drain, or a test forcing re-placement). It reports whether the
// blacklist took effect: the last healthy executor is never blacklisted.
func (c *Cluster) Blacklist(exec int) bool {
	c.mu.Lock()
	ok := !c.blacklisted[exec] && c.numHealthy > 1
	if ok {
		c.blacklisted[exec] = true
		c.blacklistedAt[exec] = time.Now()
		c.numHealthy--
	}
	c.mu.Unlock()
	if ok {
		c.conf.Hooks.ExecutorBlacklisted(exec)
	}
	return ok
}

// recordFailure counts a failed attempt against its executor and
// blacklists it at the configured threshold — never the last healthy one.
func (c *Cluster) recordFailure(exec int) {
	if c.conf.MaxExecutorFailures <= 0 {
		return
	}
	c.mu.Lock()
	c.failures[exec]++
	tripped := !c.blacklisted[exec] &&
		c.failures[exec] >= c.conf.MaxExecutorFailures &&
		c.numHealthy > 1
	if tripped {
		c.blacklisted[exec] = true
		c.blacklistedAt[exec] = time.Now()
		c.numHealthy--
	}
	c.mu.Unlock()
	if tripped {
		c.conf.Hooks.ExecutorBlacklisted(exec)
	}
}

// ExecutorState is one executor's health snapshot, for the ops plane's
// /executors view.
type ExecutorState struct {
	Exec          int       `json:"exec"`
	Failures      int       `json:"failures"`
	Blacklisted   bool      `json:"blacklisted"`
	Probing       bool      `json:"probing,omitempty"`
	BlacklistedAt time.Time `json:"blacklisted_at,omitzero"`
}

// States snapshots every executor's health: attempt-failure count,
// blacklist membership, and probation-probe status.
func (c *Cluster) States() []ExecutorState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ExecutorState, c.conf.NumExecutors)
	for e := range out {
		out[e] = ExecutorState{
			Exec:        e,
			Failures:    c.failures[e],
			Blacklisted: c.blacklisted[e],
			Probing:     c.probing[e],
		}
		if c.blacklisted[e] {
			out[e].BlacklistedAt = c.blacklistedAt[e]
		}
	}
	return out
}

// placeForAttempt resolves a primary attempt's placement, preferring a
// blacklisted executor whose probation is due: that attempt becomes the
// executor's single probe task (probe=true), and its outcome must be
// reported through probeResult. It is deliberately NOT pure — the
// probation decision reads the clock — which is why the pure placement
// rule (Place/placeLocked) stays untouched and probation lives in this
// wrapper consulted only on the attempt path.
func (c *Cluster) placeForAttempt(part int) (exec int, probe bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d := c.conf.BlacklistProbationAfter; d > 0 {
		now := time.Now()
		for e := 0; e < c.conf.NumExecutors; e++ {
			if c.blacklisted[e] && !c.probing[e] && now.Sub(c.blacklistedAt[e]) >= d {
				c.probing[e] = true
				return e, true
			}
		}
	}
	return c.placeLocked(part, -1), false
}

// probeResult settles a probation probe: success reinstates the executor
// into placement with a clean failure record; failure re-blacklists it
// and restarts the probation clock.
func (c *Cluster) probeResult(exec int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.probing[exec] {
		return
	}
	c.probing[exec] = false
	if ok {
		c.blacklisted[exec] = false
		c.failures[exec] = 0
		c.numHealthy++
		return
	}
	c.blacklistedAt[exec] = time.Now()
}

// StageOptions selects per-stage scheduling behaviour.
type StageOptions struct {
	// Speculatable marks the stage's tasks as safe to run twice
	// concurrently: their side effects must be idempotent under
	// duplication. Map stages qualify because map-output registration
	// replaces (Transport.Register displaces, and the displaced buffers
	// are released); reduce stages qualify under the stage-commit shuffle
	// protocol, where fetches are non-consuming frame copies and the
	// engine keeps only the first attempt's merged output. Action stages
	// that write shared result slots must likewise guard their slot
	// against a duplicate delivery before opting in.
	Speculatable bool
	// OnStart, when set, receives the scheduler-assigned stage id before
	// any attempt launches — the seam observability uses to correlate a
	// caller-side stage name with the ids attempt events carry.
	OnStart func(stage int)
}

// Attempt identifies one execution of one task, handed to the stage body.
type Attempt struct {
	Stage   int
	Part    int
	Attempt int // 1-based, unique per task across retries and speculation
	Exec    int
	// Speculative marks duplicate attempts racing a straggler.
	Speculative bool

	cancel <-chan struct{}
}

// ExternalAttempt builds the attempt descriptor for a task dispatched by
// a remote scheduler (the multi-process control plane): the driver's
// sched.Cluster made the placement and retry decisions, and the executor
// process only executes the body. cancel carries the driver's CancelTask
// signal into the body's cooperative polling; nil means no cancellation
// is plumbed and Canceled always reports false.
func ExternalAttempt(stage, part, attempt, exec int, cancel <-chan struct{}) Attempt {
	return Attempt{Stage: stage, Part: part, Attempt: attempt, Exec: exec, cancel: cancel}
}

// CancelCh exposes the attempt's cancellation signal for dispatchers
// that relay it across a process boundary — the multiproc driver selects
// on it to send CancelTask. nil means cancellation was not plumbed.
func (a Attempt) CancelCh() <-chan struct{} { return a.cancel }

// Canceled reports whether the task was completed by a twin attempt;
// long-running bodies should poll it and bail out with ErrCanceled.
func (a Attempt) Canceled() bool {
	select {
	case <-a.cancel:
		return true
	default:
		return false
	}
}

// Cancel exposes the cancellation signal for select-based waits.
func (a Attempt) Cancel() <-chan struct{} { return a.cancel }

// RunStage executes body once per partition index in [0, parts), placing
// each attempt via the cluster affinity (blacklist-aware), bounding
// concurrency to SlotsPerExecutor per executor, retrying failed attempts
// up to the task budget, and — for speculatable stages with speculation
// enabled — duplicating stragglers. It waits for every attempt, including
// losers of speculative races, before returning. Per task, only the final
// attempt's error survives into the joined stage error (earlier failures
// are visible through the hooks); tasks that never succeeded report their
// attempt count and final executor.
func (c *Cluster) RunStage(parts int, opts StageOptions, body func(Attempt) error) error {
	ids := make([]int, parts)
	for p := range ids {
		ids[p] = p
	}
	return c.RunStageOn(ids, opts, body)
}

// RunStageOn is RunStage over an explicit partition-id set: each attempt's
// Part is taken from partIDs rather than a dense [0, parts) range. It is
// the lineage-repair entry point — re-running exactly the map tasks whose
// registered outputs were lost re-enters the original map body with the
// original partition numbers, so the repaired outputs register under their
// original MapOutputIDs.
func (c *Cluster) RunStageOn(partIDs []int, opts StageOptions, body func(Attempt) error) error {
	s := &stage{
		c:    c,
		id:   int(c.nextStage.Add(1)),
		opts: opts,
		sems: make([]chan struct{}, c.conf.NumExecutors),
	}
	for i := range s.sems {
		s.sems[i] = make(chan struct{}, c.conf.SlotsPerExecutor)
	}
	s.tasks = make([]*taskState, len(partIDs))
	for i, part := range partIDs {
		s.tasks[i] = &taskState{part: part, doneCh: make(chan struct{})}
	}
	if opts.OnStart != nil {
		opts.OnStart(s.id)
	}

	var stopMonitor, monitorDone chan struct{}
	if opts.Speculatable && c.conf.Speculation.Enabled && len(s.tasks) > 1 {
		stopMonitor = make(chan struct{})
		monitorDone = make(chan struct{})
		go s.monitor(stopMonitor, monitorDone, body)
	}
	s.wg.Add(len(s.tasks))
	for i := range s.tasks {
		go s.primary(i, body)
	}
	s.wg.Wait()
	if stopMonitor != nil {
		// Stop the monitor before waiting on the speculative attempts: only
		// the monitor adds to specWg, so once it has exited the Wait cannot
		// race an Add.
		close(stopMonitor)
		<-monitorDone
	}
	s.specWg.Wait()

	var errs []error
	for _, t := range s.tasks {
		t.mu.Lock()
		if t.failed {
			errs = append(errs, t.err)
		}
		t.mu.Unlock()
	}
	return errors.Join(errs...)
}
