// Package sched is the fault-tolerant task scheduler behind the engine's
// stages. It replaces the engine's original inline runTasks loop with a
// Spark-shaped recovery model: every (stage, partition) runs as a chain of
// task *attempts* with a per-task retry budget; repeated attempt failures
// on one executor blacklist it cluster-wide, after which placement
// re-routes that executor's partitions to the surviving ones; and stages
// whose tasks are safe to duplicate (map stages — their side effect is
// map-output registration, which replaces idempotently) can launch a
// speculative copy of straggler tasks past a quantile-based runtime
// threshold, the loser being cancelled cooperatively.
//
// The package is engine-agnostic: it schedules opaque attempt bodies over
// integer executor ids. The engine adapts bodies to its Executor objects,
// mirrors scheduler events into its metrics through Hooks, and wires the
// deterministic fault-injection harness (internal/chaos) in through the
// FaultInjector seam, so every recovery path is testable without real
// faults.
package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCanceled is returned by attempt bodies (and fault injectors) that
// observed their cancellation signal — the task's twin attempt already
// completed it. The scheduler treats it as a clean exit, not a failure:
// it is not counted, not retried, and not held against the executor.
var ErrCanceled = errors.New("sched: attempt canceled (task completed by a twin attempt)")

// ErrNoRetry marks attempt errors retrying cannot fix. A body returns
// NoRetry(err) when the failed attempt consumed state a re-run would need
// — a reduce attempt that already fetched single-consumer map outputs —
// so the scheduler fails the task immediately with the root-cause error
// instead of burning the budget on doomed re-runs that mask it.
var ErrNoRetry = errors.New("sched: attempt failure is not retryable")

// NoRetry wraps err so the scheduler will not retry the attempt's task.
func NoRetry(err error) error {
	return fmt.Errorf("%w: %w", ErrNoRetry, err)
}

// Hooks observes scheduler events. The engine implements it to mirror
// events into cluster- and executor-level metrics. All methods may be
// called concurrently.
type Hooks interface {
	// TaskStarted fires when an attempt begins executing on an executor
	// (after it acquired a worker slot) — once per attempt, so task counts
	// measure attempts, including retries and speculative duplicates.
	TaskStarted(exec int)
	// TaskFailed fires once per failed attempt, on the executor that ran it.
	TaskFailed(exec int)
	// TaskRetried fires when a retry attempt is launched after a failure.
	TaskRetried(exec int)
	// SpeculativeLaunched fires when a straggler's duplicate is launched.
	SpeculativeLaunched(exec int)
	// SpeculativeWon fires when a speculative attempt completes its task
	// before the original.
	SpeculativeWon(exec int)
	// ExecutorBlacklisted fires when the cluster stops placing work on an
	// executor.
	ExecutorBlacklisted(exec int)
}

// nopHooks is the default observer.
type nopHooks struct{}

func (nopHooks) TaskStarted(int)         {}
func (nopHooks) TaskFailed(int)          {}
func (nopHooks) TaskRetried(int)         {}
func (nopHooks) SpeculativeLaunched(int) {}
func (nopHooks) SpeculativeWon(int)      {}
func (nopHooks) ExecutorBlacklisted(int) {}

// FaultInjector is the seam for deterministic fault injection
// (internal/chaos implements it). Both methods may return an injected
// error; BeforeAttempt may also block (an injected straggler delay), in
// which case it must unblock when cancel closes and return ErrCanceled.
type FaultInjector interface {
	// BeforeAttempt runs before the attempt body.
	BeforeAttempt(stage, part, attempt, exec int, cancel <-chan struct{}) error
	// AfterAttempt runs after a successful attempt body, on speculatable
	// stages only (their side effects are idempotent under re-execution);
	// an error fails the attempt *after* its side effects landed (the
	// "executor died before reporting success" case — the retry's
	// re-registration then displaces the completed attempt's outputs).
	AfterAttempt(stage, part, attempt, exec int) error
}

// Speculation tunes straggler duplication for stages that allow it.
type Speculation struct {
	// Enabled turns straggler speculation on (default off: it duplicates
	// work).
	Enabled bool
	// Quantile is the fraction of a stage's tasks that must have finished
	// before any straggler is duplicated (0 = 0.75).
	Quantile float64
	// Multiplier scales the median successful-attempt runtime into the
	// straggler threshold (0 = 1.5).
	Multiplier float64
	// MinRuntime floors the straggler threshold, so microsecond tasks do
	// not speculate on scheduling noise (0 = 30ms).
	MinRuntime time.Duration
	// Interval is the straggler-monitor tick (0 = 2ms).
	Interval time.Duration
}

func (s Speculation) withDefaults() Speculation {
	if s.Quantile <= 0 || s.Quantile > 1 {
		s.Quantile = 0.75
	}
	if s.Multiplier <= 0 {
		s.Multiplier = 1.5
	}
	if s.MinRuntime <= 0 {
		s.MinRuntime = 30 * time.Millisecond
	}
	if s.Interval <= 0 {
		s.Interval = 2 * time.Millisecond
	}
	return s
}

// Config sizes a Cluster.
type Config struct {
	// NumExecutors is the executor count (placement domain).
	NumExecutors int
	// SlotsPerExecutor bounds concurrently running attempts per executor
	// per stage (stage-local slots: nested stages never deadlock against
	// the slots their parents hold).
	SlotsPerExecutor int
	// MaxTaskRetries is the number of retry attempts each task gets after
	// its first failure (so a task runs at most MaxTaskRetries+1 times).
	// Negative means no retries.
	MaxTaskRetries int
	// MaxExecutorFailures blacklists an executor once this many attempts
	// have failed on it. 0 disables blacklisting. The last healthy
	// executor is never blacklisted.
	MaxExecutorFailures int
	// Speculation tunes straggler duplication.
	Speculation Speculation
	// Hooks observes scheduler events (nil = none).
	Hooks Hooks
	// Faults is the fault-injection seam (nil = no injected faults).
	Faults FaultInjector
}

func (c Config) withDefaults() Config {
	if c.NumExecutors <= 0 {
		c.NumExecutors = 1
	}
	if c.SlotsPerExecutor <= 0 {
		c.SlotsPerExecutor = 1
	}
	if c.MaxTaskRetries < 0 {
		c.MaxTaskRetries = 0
	}
	if c.Hooks == nil {
		c.Hooks = nopHooks{}
	}
	c.Speculation = c.Speculation.withDefaults()
	return c
}

// Cluster holds the scheduler state that outlives a single stage:
// executor health (failure counts, blacklist) and the stage id counter.
// Placement policy lives here so the engine's cache-block affinity and
// the stage scheduler always agree on where a partition runs.
type Cluster struct {
	conf      Config
	nextStage atomic.Int64

	mu          sync.Mutex
	failures    []int
	blacklisted []bool
	numHealthy  int
}

// NewCluster builds a cluster with every executor healthy.
func NewCluster(conf Config) *Cluster {
	conf = conf.withDefaults()
	return &Cluster{
		conf:        conf,
		failures:    make([]int, conf.NumExecutors),
		blacklisted: make([]bool, conf.NumExecutors),
		numHealthy:  conf.NumExecutors,
	}
}

// Place is the affinity rule: partition p lives on executor p mod N while
// that executor is healthy. When its home executor is blacklisted, p is
// re-placed deterministically over the healthy executors; partitions
// whose homes are healthy never move, so surviving executors keep their
// cache locality.
//
//deca:pure
func (c *Cluster) Place(part int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.placeLocked(part, -1)
}

// placeLocked resolves placement, optionally avoiding one executor (a
// speculative duplicate should not run beside the attempt it is racing).
//
//deca:pure
func (c *Cluster) placeLocked(part, avoid int) int {
	n := c.conf.NumExecutors
	home := part % n
	if !c.blacklisted[home] && home != avoid {
		return home
	}
	candidates := make([]int, 0, n)
	for e := 0; e < n; e++ {
		if !c.blacklisted[e] && e != avoid {
			candidates = append(candidates, e)
		}
	}
	if len(candidates) == 0 {
		// Only the avoided executor is healthy; use it anyway.
		for e := 0; e < n; e++ {
			if !c.blacklisted[e] {
				return e
			}
		}
		return home // unreachable: the last healthy executor is never blacklisted
	}
	return candidates[part%len(candidates)]
}

// Blacklisted reports whether the executor is blacklisted.
func (c *Cluster) Blacklisted(exec int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blacklisted[exec]
}

// NumBlacklisted returns how many executors are blacklisted.
func (c *Cluster) NumBlacklisted() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conf.NumExecutors - c.numHealthy
}

// Blacklist removes the executor from placement immediately (an operator
// drain, or a test forcing re-placement). It reports whether the
// blacklist took effect: the last healthy executor is never blacklisted.
func (c *Cluster) Blacklist(exec int) bool {
	c.mu.Lock()
	ok := !c.blacklisted[exec] && c.numHealthy > 1
	if ok {
		c.blacklisted[exec] = true
		c.numHealthy--
	}
	c.mu.Unlock()
	if ok {
		c.conf.Hooks.ExecutorBlacklisted(exec)
	}
	return ok
}

// recordFailure counts a failed attempt against its executor and
// blacklists it at the configured threshold — never the last healthy one.
func (c *Cluster) recordFailure(exec int) {
	if c.conf.MaxExecutorFailures <= 0 {
		return
	}
	c.mu.Lock()
	c.failures[exec]++
	tripped := !c.blacklisted[exec] &&
		c.failures[exec] >= c.conf.MaxExecutorFailures &&
		c.numHealthy > 1
	if tripped {
		c.blacklisted[exec] = true
		c.numHealthy--
	}
	c.mu.Unlock()
	if tripped {
		c.conf.Hooks.ExecutorBlacklisted(exec)
	}
}

// StageOptions selects per-stage scheduling behaviour.
type StageOptions struct {
	// Speculatable marks the stage's tasks as safe to run twice
	// concurrently: their side effects must be idempotent under
	// duplication, like map-output registration (Transport.Register
	// replaces, and the displaced buffers are released). Reduce stages are
	// not speculatable — map-output fetch is single-consumer — nor are
	// action stages that write shared result slots.
	Speculatable bool
}

// Attempt identifies one execution of one task, handed to the stage body.
type Attempt struct {
	Stage   int
	Part    int
	Attempt int // 1-based, unique per task across retries and speculation
	Exec    int
	// Speculative marks duplicate attempts racing a straggler.
	Speculative bool

	cancel <-chan struct{}
}

// ExternalAttempt builds the attempt descriptor for a task dispatched by
// a remote scheduler (the multi-process control plane): the driver's
// sched.Cluster made the placement and retry decisions, and the executor
// process only executes the body. There is no cancel signal — the nil
// channel makes Canceled report false — because cross-process
// cancellation is not plumbed; duplicate attempts run to completion and
// their side effects displace idempotently.
func ExternalAttempt(stage, part, attempt, exec int) Attempt {
	return Attempt{Stage: stage, Part: part, Attempt: attempt, Exec: exec}
}

// Canceled reports whether the task was completed by a twin attempt;
// long-running bodies should poll it and bail out with ErrCanceled.
func (a Attempt) Canceled() bool {
	select {
	case <-a.cancel:
		return true
	default:
		return false
	}
}

// Cancel exposes the cancellation signal for select-based waits.
func (a Attempt) Cancel() <-chan struct{} { return a.cancel }

// RunStage executes body once per partition index in [0, parts), placing
// each attempt via the cluster affinity (blacklist-aware), bounding
// concurrency to SlotsPerExecutor per executor, retrying failed attempts
// up to the task budget, and — for speculatable stages with speculation
// enabled — duplicating stragglers. It waits for every attempt, including
// losers of speculative races, before returning. Per task, only the final
// attempt's error survives into the joined stage error (earlier failures
// are visible through the hooks); tasks that never succeeded report their
// attempt count and final executor.
func (c *Cluster) RunStage(parts int, opts StageOptions, body func(Attempt) error) error {
	s := &stage{
		c:    c,
		id:   int(c.nextStage.Add(1)),
		opts: opts,
		sems: make([]chan struct{}, c.conf.NumExecutors),
	}
	for i := range s.sems {
		s.sems[i] = make(chan struct{}, c.conf.SlotsPerExecutor)
	}
	s.tasks = make([]*taskState, parts)
	for p := range s.tasks {
		s.tasks[p] = &taskState{part: p, doneCh: make(chan struct{})}
	}

	var stopMonitor, monitorDone chan struct{}
	if opts.Speculatable && c.conf.Speculation.Enabled && parts > 1 {
		stopMonitor = make(chan struct{})
		monitorDone = make(chan struct{})
		go s.monitor(stopMonitor, monitorDone, body)
	}
	s.wg.Add(parts)
	for p := 0; p < parts; p++ {
		go s.primary(p, body)
	}
	s.wg.Wait()
	if stopMonitor != nil {
		// Stop the monitor before waiting on the speculative attempts: only
		// the monitor adds to specWg, so once it has exited the Wait cannot
		// race an Add.
		close(stopMonitor)
		<-monitorDone
	}
	s.specWg.Wait()

	var errs []error
	for _, t := range s.tasks {
		t.mu.Lock()
		if t.failed {
			errs = append(errs, t.err)
		}
		t.mu.Unlock()
	}
	return errors.Join(errs...)
}
