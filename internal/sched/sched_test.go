package sched

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recorder counts hook events.
type recorder struct {
	started, failed, retried       atomic.Int64
	specLaunched, specWon          atomic.Int64
	blacklisted                    atomic.Int64
	mu                             sync.Mutex
	blacklistedExecs, failedByExec []int
}

func (r *recorder) TaskStarted(int) { r.started.Add(1) }
func (r *recorder) TaskFailed(exec int) {
	r.failed.Add(1)
	r.mu.Lock()
	r.failedByExec = append(r.failedByExec, exec)
	r.mu.Unlock()
}
func (r *recorder) TaskRetried(int)         { r.retried.Add(1) }
func (r *recorder) SpeculativeLaunched(int) { r.specLaunched.Add(1) }
func (r *recorder) SpeculativeWon(int)      { r.specWon.Add(1) }
func (r *recorder) ExecutorBlacklisted(exec int) {
	r.blacklisted.Add(1)
	r.mu.Lock()
	r.blacklistedExecs = append(r.blacklistedExecs, exec)
	r.mu.Unlock()
}

func TestRetryRecoversWithinBudget(t *testing.T) {
	rec := &recorder{}
	c := NewCluster(Config{
		NumExecutors: 2, SlotsPerExecutor: 2, MaxTaskRetries: 3, Hooks: rec,
	})
	var fails atomic.Int64
	err := c.RunStage(4, StageOptions{}, func(a Attempt) error {
		if a.Part == 1 && fails.Add(1) <= 2 {
			return fmt.Errorf("flaky")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stage should recover: %v", err)
	}
	if got := rec.retried.Load(); got != 2 {
		t.Errorf("retried = %d, want 2", got)
	}
	if got := rec.failed.Load(); got != 2 {
		t.Errorf("failed = %d, want 2 (once per attempt)", got)
	}
	if got := rec.started.Load(); got != 6 {
		t.Errorf("started = %d, want 6", got)
	}
}

func TestBudgetExhaustionNamesAttemptAndExecutor(t *testing.T) {
	c := NewCluster(Config{NumExecutors: 3, SlotsPerExecutor: 1, MaxTaskRetries: 2})
	err := c.RunStage(4, StageOptions{}, func(a Attempt) error {
		if a.Part == 2 {
			return fmt.Errorf("hard-boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected stage failure")
	}
	msg := err.Error()
	for _, want := range []string{"task 2", "failed after 3 attempts", "final attempt 3", "on executor 2", "hard-boom"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestAttemptNumbersAreSequential(t *testing.T) {
	c := NewCluster(Config{NumExecutors: 1, SlotsPerExecutor: 1, MaxTaskRetries: 2})
	var attempts []int
	var mu sync.Mutex
	_ = c.RunStage(1, StageOptions{}, func(a Attempt) error {
		mu.Lock()
		attempts = append(attempts, a.Attempt)
		mu.Unlock()
		return fmt.Errorf("boom")
	})
	want := []int{1, 2, 3}
	if len(attempts) != len(want) {
		t.Fatalf("attempts = %v, want %v", attempts, want)
	}
	for i := range want {
		if attempts[i] != want[i] {
			t.Errorf("attempts = %v, want %v", attempts, want)
			break
		}
	}
}

func TestBlacklistReplacesOnlyDeadExecutorsPartitions(t *testing.T) {
	rec := &recorder{}
	c := NewCluster(Config{
		NumExecutors: 4, SlotsPerExecutor: 2,
		MaxTaskRetries: 3, MaxExecutorFailures: 2, Hooks: rec,
	})
	// Executor 1 fails every attempt placed on it; after two failures it
	// is blacklisted and its partitions re-place.
	err := c.RunStage(8, StageOptions{}, func(a Attempt) error {
		if a.Exec == 1 {
			return fmt.Errorf("exec-1-broken")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stage should recover by re-placing: %v", err)
	}
	if !c.Blacklisted(1) {
		t.Error("executor 1 not blacklisted")
	}
	if got := rec.blacklisted.Load(); got != 1 {
		t.Errorf("blacklist events = %d, want 1", got)
	}
	// Partitions with healthy homes keep their affinity; executor 1's
	// partitions land on a healthy executor, deterministically.
	for p := 0; p < 8; p++ {
		got := c.Place(p)
		if p%4 != 1 {
			if got != p%4 {
				t.Errorf("partition %d moved to %d despite healthy home %d", p, got, p%4)
			}
		} else if got == 1 {
			t.Errorf("partition %d still placed on blacklisted executor", p)
		}
	}
}

func TestLastHealthyExecutorIsNeverBlacklisted(t *testing.T) {
	c := NewCluster(Config{
		NumExecutors: 2, SlotsPerExecutor: 1,
		MaxTaskRetries: 5, MaxExecutorFailures: 1,
	})
	// Every attempt everywhere fails: executor health must bottom out at
	// one survivor, and the stage must fail rather than hang.
	err := c.RunStage(2, StageOptions{}, func(a Attempt) error {
		return fmt.Errorf("everything-burns")
	})
	if err == nil {
		t.Fatal("expected stage failure")
	}
	if c.NumBlacklisted() != 1 {
		t.Errorf("blacklisted = %d, want 1 (never the last healthy executor)", c.NumBlacklisted())
	}
	healthy := 0
	for e := 0; e < 2; e++ {
		if !c.Blacklisted(e) {
			healthy++
		}
	}
	if healthy != 1 {
		t.Errorf("healthy executors = %d, want 1", healthy)
	}
}

func TestSpeculationDuplicatesStragglerAndCancelsLoser(t *testing.T) {
	rec := &recorder{}
	c := NewCluster(Config{
		NumExecutors: 2, SlotsPerExecutor: 4, MaxTaskRetries: 1,
		Speculation: Speculation{
			Enabled: true, Quantile: 0.5, Multiplier: 1.2,
			MinRuntime: 5 * time.Millisecond, Interval: time.Millisecond,
		},
		Hooks: rec,
	})
	var loserCanceled atomic.Bool
	var straggler atomic.Int64
	err := c.RunStage(8, StageOptions{Speculatable: true}, func(a Attempt) error {
		if a.Part != 3 {
			return nil
		}
		if straggler.Add(1) == 1 && !a.Speculative {
			// The original attempt stalls, polling for cancellation like
			// the engine's fill loop does.
			for i := 0; i < 2000; i++ {
				if a.Canceled() {
					loserCanceled.Store(true)
					return ErrCanceled
				}
				time.Sleep(time.Millisecond)
			}
			return nil
		}
		return nil // the speculative duplicate finishes immediately
	})
	if err != nil {
		t.Fatalf("stage failed: %v", err)
	}
	if got := rec.specLaunched.Load(); got != 1 {
		t.Errorf("speculative launches = %d, want 1", got)
	}
	if got := rec.specWon.Load(); got != 1 {
		t.Errorf("speculative wins = %d, want 1", got)
	}
	if !loserCanceled.Load() {
		t.Error("losing attempt never observed its cancellation")
	}
	if got := rec.failed.Load(); got != 0 {
		t.Errorf("failures = %d, want 0 (a canceled loser is not a failure)", got)
	}
}

func TestSpeculationDisabledForNonSpeculatableStages(t *testing.T) {
	rec := &recorder{}
	c := NewCluster(Config{
		NumExecutors: 2, SlotsPerExecutor: 4,
		Speculation: Speculation{
			Enabled: true, Quantile: 0.25, Multiplier: 1.0,
			MinRuntime: time.Millisecond, Interval: time.Millisecond,
		},
		Hooks: rec,
	})
	err := c.RunStage(4, StageOptions{}, func(a Attempt) error {
		if a.Part == 0 {
			time.Sleep(30 * time.Millisecond) // a straggler, but not speculatable
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.specLaunched.Load(); got != 0 {
		t.Errorf("non-speculatable stage launched %d duplicates", got)
	}
}

// errInjector fails chosen attempts before/after the body.
type errInjector struct {
	before func(stage, part, attempt, exec int) error
	after  func(stage, part, attempt, exec int) error
}

func (i errInjector) BeforeAttempt(stage, part, attempt, exec int, _ <-chan struct{}) error {
	if i.before == nil {
		return nil
	}
	return i.before(stage, part, attempt, exec)
}

func (i errInjector) AfterAttempt(stage, part, attempt, exec int) error {
	if i.after == nil {
		return nil
	}
	return i.after(stage, part, attempt, exec)
}

func TestAfterAttemptFailureRetriesDespiteSideEffects(t *testing.T) {
	rec := &recorder{}
	var bodies atomic.Int64
	c := NewCluster(Config{
		NumExecutors: 2, SlotsPerExecutor: 1, MaxTaskRetries: 2, Hooks: rec,
		Faults: errInjector{after: func(_, part, attempt, _ int) error {
			if part == 0 && attempt == 1 {
				return errors.New("died after reporting")
			}
			return nil
		}},
	})
	// AfterAttempt faults only apply to speculatable stages — the ones
	// whose side effects are idempotent under re-execution.
	err := c.RunStage(2, StageOptions{Speculatable: true}, func(a Attempt) error {
		bodies.Add(1)
		return nil
	})
	if err != nil {
		t.Fatalf("stage failed: %v", err)
	}
	if got := bodies.Load(); got != 3 {
		t.Errorf("bodies ran %d times, want 3 (task 0 re-ran after its side effects landed)", got)
	}
	if got := rec.retried.Load(); got != 1 {
		t.Errorf("retried = %d, want 1", got)
	}
	// On a non-speculatable stage the same injector fires nothing.
	bodies.Store(0)
	if err := c.RunStage(2, StageOptions{}, func(a Attempt) error {
		bodies.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := bodies.Load(); got != 2 {
		t.Errorf("non-speculatable stage ran bodies %d times, want 2 (no AfterAttempt faults)", got)
	}
}

// TestStageStress hammers retries, blacklisting and speculation together
// under -race: deterministic outcome not asserted, only convergence and
// bookkeeping sanity.
func TestStageStress(t *testing.T) {
	rec := &recorder{}
	c := NewCluster(Config{
		NumExecutors: 4, SlotsPerExecutor: 4,
		MaxTaskRetries: 6, MaxExecutorFailures: 50,
		Speculation: Speculation{
			Enabled: true, Quantile: 0.5, Multiplier: 1.5,
			MinRuntime: 2 * time.Millisecond, Interval: time.Millisecond,
		},
		Hooks: rec,
	})
	var fails atomic.Int64
	for round := 0; round < 5; round++ {
		err := c.RunStage(32, StageOptions{Speculatable: true}, func(a Attempt) error {
			if (a.Part+a.Attempt+round)%7 == 0 {
				fails.Add(1)
				return fmt.Errorf("pseudo-random failure")
			}
			if a.Part%13 == round {
				time.Sleep(3 * time.Millisecond)
			}
			if a.Canceled() {
				return ErrCanceled
			}
			return nil
		})
		if err != nil {
			t.Fatalf("round %d failed: %v", round, err)
		}
	}
	if rec.failed.Load() == 0 {
		t.Error("stress test injected no failures")
	}
	if rec.started.Load() < 5*32 {
		t.Errorf("started = %d, want ≥ %d", rec.started.Load(), 5*32)
	}
}

func TestPlaceIsStableWithoutBlacklist(t *testing.T) {
	c := NewCluster(Config{NumExecutors: 3})
	for p := 0; p < 9; p++ {
		if got := c.Place(p); got != p%3 {
			t.Errorf("Place(%d) = %d, want %d", p, got, p%3)
		}
	}
}

func TestRunStageOnSparsePartitions(t *testing.T) {
	c := NewCluster(Config{NumExecutors: 3, SlotsPerExecutor: 2})
	want := []int{2, 5, 11}
	seen := make(map[int]int)
	var mu sync.Mutex
	err := c.RunStageOn(want, StageOptions{}, func(a Attempt) error {
		mu.Lock()
		seen[a.Part]++
		mu.Unlock()
		if a.Exec != c.Place(a.Part) {
			t.Errorf("part %d placed on %d, want affinity %d", a.Part, a.Exec, c.Place(a.Part))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(want) {
		t.Fatalf("ran %d distinct partitions, want %d (%v)", len(seen), len(want), seen)
	}
	for _, p := range want {
		if seen[p] != 1 {
			t.Errorf("partition %d ran %d times, want 1", p, seen[p])
		}
	}
}

func TestBlacklistProbationReinstates(t *testing.T) {
	c := NewCluster(Config{
		NumExecutors: 2, SlotsPerExecutor: 2, MaxTaskRetries: 1,
		BlacklistProbationAfter: 5 * time.Millisecond,
	})
	if !c.Blacklist(1) {
		t.Fatal("blacklist did not take")
	}
	time.Sleep(10 * time.Millisecond)
	// The next primary attempt becomes executor 1's probe; its success
	// reinstates the executor.
	var probeExec atomic.Int64
	probeExec.Store(-1)
	if err := c.RunStage(1, StageOptions{}, func(a Attempt) error {
		probeExec.Store(int64(a.Exec))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := probeExec.Load(); got != 1 {
		t.Errorf("probe ran on executor %d, want the blacklisted executor 1", got)
	}
	if c.Blacklisted(1) {
		t.Error("successful probe must reinstate the executor")
	}
	if got := c.NumBlacklisted(); got != 0 {
		t.Errorf("NumBlacklisted = %d, want 0", got)
	}
}

func TestBlacklistProbationFailureReblacklists(t *testing.T) {
	c := NewCluster(Config{
		NumExecutors: 2, SlotsPerExecutor: 2, MaxTaskRetries: 2,
		BlacklistProbationAfter: 5 * time.Millisecond,
	})
	if !c.Blacklist(1) {
		t.Fatal("blacklist did not take")
	}
	time.Sleep(10 * time.Millisecond)
	var failed atomic.Int64
	if err := c.RunStage(1, StageOptions{}, func(a Attempt) error {
		if a.Exec == 1 {
			failed.Add(1)
			return fmt.Errorf("probe dies")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if failed.Load() == 0 {
		t.Fatal("no probe attempt ran on the blacklisted executor")
	}
	if !c.Blacklisted(1) {
		t.Error("failed probe must keep the executor blacklisted")
	}
	// The probation clock restarted: immediately after the failed probe,
	// placement avoids executor 1 again.
	if got, probe := c.placeForAttempt(1); probe || got != 0 {
		t.Errorf("placeForAttempt right after failed probe = (%d, probe=%v), want (0, false)", got, probe)
	}
}
