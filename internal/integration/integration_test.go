// Package integration_test exercises cross-module flows that no single
// package owns: the Figure 7(b) partially-decomposable hand-off from a
// grouped shuffle buffer into a cached page block, planner-to-engine
// consistency, and whole-pipeline memory hygiene.
package integration_test

import (
	"reflect"
	"sort"
	"testing"

	"deca/internal/cache"
	"deca/internal/core"
	"deca/internal/decompose"
	"deca/internal/engine"
	"deca/internal/memory"
	"deca/internal/shuffle"
	"deca/internal/udt"
)

// TestFigure7bPartialDecomposition walks the exact §4.3.3 scenario: a
// groupByKey shuffle buffer whose value lists cannot be decomposed while
// growing, immediately copied into a cache block where the data *is*
// decomposed; the shuffle buffer then dies and its space reclaims, while
// the cache serves reads from pages.
func TestFigure7bPartialDecomposition(t *testing.T) {
	mem := memory.NewManager(4096, 0)

	// Phase 1: the grouped shuffle buffer (primary container).
	buf := shuffle.NewDecaGroup[int64, int64](mem, decompose.Int64Codec{}, decompose.Int64Codec{}, "")
	edges := []struct{ src, dst int64 }{
		{1, 2}, {1, 3}, {2, 3}, {1, 4}, {3, 1}, {2, 4},
	}
	for _, e := range edges {
		buf.Put(e.src, e.dst)
	}

	// Phase boundary: copy each key's complete (now size-frozen) adjacency
	// into the cache's page group — the phased refinement grades the list
	// RuntimeFixed from here on, so decomposition is safe.
	adjCodec := decompose.PairCodec[int64, []int64]{
		KeyCodec:   decompose.Int64Codec{},
		ValueCodec: decompose.Int64SliceCodec{},
	}
	cacheGroup := mem.NewGroup()
	count := 0
	err := buf.Drain(func(k int64, vs []int64) bool {
		decompose.Write(cacheGroup, adjCodec, decompose.Pair[int64, []int64]{Key: k, Value: vs})
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	blk := cache.NewDecaBlockFromGroup(mem, adjCodec, cacheGroup, count)

	// The shuffle buffer's lifetime ends; its pages reclaim wholesale.
	inUseBefore := mem.InUse()
	buf.Release()
	if mem.InUse() >= inUseBefore {
		t.Error("releasing the shuffle buffer did not reclaim pages")
	}

	// Phase 2: read adjacency from the decomposed cache.
	got := map[int64][]int64{}
	blk.Each(func(kv decompose.Pair[int64, []int64]) bool {
		vs := append([]int64(nil), kv.Value...)
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		got[kv.Key] = vs
		return true
	})
	want := map[int64][]int64{1: {2, 3, 4}, 2: {3, 4}, 3: {1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("adjacency after hand-off = %v, want %v", got, want)
	}

	blk.Drop()
	if mem.InUse() != 0 {
		t.Errorf("pages leaked after cache drop: %d", mem.InUse())
	}
}

// TestPlannerEngineConsistency: the decisions core.Optimize makes for the
// paper's jobs must match what the engine actually does under the
// corresponding configuration — decomposition requires exactly the
// conditions the engine's Deca fast paths check.
func TestPlannerEngineConsistency(t *testing.T) {
	plan, err := core.Optimize(core.WCJob())
	if err != nil {
		t.Fatal(err)
	}
	d := plan.Decisions["count-agg"]
	if d.Mode != core.FullyDecompose {
		t.Fatalf("planner: count-agg = %s", d.Mode)
	}
	// The engine's condition for a Deca aggregation buffer is a fixed-size
	// value codec — exactly the StaticFixed value the planner demanded.
	if (decompose.Int64Codec{}).FixedSize() < 0 {
		t.Error("engine condition diverges from planner condition")
	}
	// And for the value the planner refused (RFST string), the engine's
	// buffer constructor refuses too.
	mem := memory.NewManager(1024, 0)
	_, err = shuffle.NewDecaAgg[int64, string](mem,
		func(a, b string) string { return a + b },
		decompose.Int64Codec{}, decompose.StringCodec{}, "")
	if err == nil {
		t.Error("engine accepted a buffer the planner proved unsafe")
	}
}

// TestMemoryHygieneAcrossJob: after a full WC-like job plus release, no
// pages remain in use — the lifetime-based reclamation story end to end.
func TestMemoryHygieneAcrossJob(t *testing.T) {
	ctx := engine.New(engine.Config{
		Parallelism: 2,
		Mode:        engine.ModeDeca,
		PageSize:    2048,
		SpillDir:    t.TempDir(),
	})
	words := engine.Parallelize(ctx, []string{"a", "b", "a", "c", "b", "a"}, 2)
	pairs := engine.Map(words, func(w string) decompose.Pair[string, int64] {
		return engine.KV(w, int64(1))
	})
	counts := engine.ReduceByKey(pairs, engine.PairOps[string, int64]{
		Key:      shuffle.StringKey(),
		KeyCodec: decompose.StringCodec{},
		ValCodec: decompose.Int64Codec{},
	}, func(a, b int64) int64 { return a + b })
	got, err := engine.CollectMap(counts)
	if err != nil {
		t.Fatal(err)
	}
	if got["a"] != 3 || got["b"] != 2 || got["c"] != 1 {
		t.Errorf("counts = %v", got)
	}
	ctx.Close()
	if ctx.Memory().InUse() != 0 {
		t.Errorf("pages in use after Close: %d", ctx.Memory().InUse())
	}
	if ctx.Memory().Stats().LiveGroups != 0 {
		t.Errorf("live groups after Close: %d", ctx.Memory().Stats().LiveGroups)
	}
}

// TestClassificationDrivesStorageLevel: the full chain from a Go type to
// an engine storage decision — the automatic path a user would follow.
func TestClassificationDrivesStorageLevel(t *testing.T) {
	type fixedRec struct {
		A int64
		B float64
	}
	type varRec struct {
		Buf []int64 // non-final: Variable
	}

	fixedDesc := udt.MustDescribe(reflect.TypeOf(fixedRec{}))
	if st := udt.Classify(fixedDesc); !st.Decomposable() {
		t.Fatalf("fixedRec = %s", st)
	}
	codec, err := decompose.NewReflectCodec[fixedRec](nil)
	if err != nil {
		t.Fatal(err)
	}

	varDesc := udt.MustDescribe(reflect.TypeOf(varRec{}))
	if st := udt.Classify(varDesc); st.Decomposable() {
		t.Fatalf("varRec = %s should not be decomposable", st)
	}
	if _, err := decompose.NewReflectCodec[varRec](nil); err == nil {
		t.Fatal("codec construction must fail for non-decomposable types")
	}

	// The decomposable type round-trips through a Deca-persisted dataset.
	ctx := engine.New(engine.Config{Parallelism: 2, Mode: engine.ModeDeca, PageSize: 1024})
	defer ctx.Close()
	data := []fixedRec{{1, 1.5}, {2, 2.5}, {3, 3.5}}
	ds := engine.Parallelize(ctx, data, 2)
	ds.Persist(engine.StorageDeca, engine.Storage[fixedRec]{Codec: codec})
	got, err := engine.Collect(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, data) {
		t.Errorf("round trip = %v", got)
	}
}
