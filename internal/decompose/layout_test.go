package decompose

import (
	"testing"

	"deca/internal/udt"
)

// TestFigure2Layout verifies the byte layout of the decomposed LabeledPoint
// from Figure 2: all references and headers gone, the raw primitive data of
// the object graph laid out contiguously — label, then data[0..D-1], then
// the offset/stride/length ints of the DenseVector.
func TestFigure2Layout(t *testing.T) {
	const D = 4
	lp := udt.LabeledPointType(true)
	l, err := CompileLayout(lp, udt.StaticFixed, udt.Lengths{"Array[float64]": D})
	if err != nil {
		t.Fatal(err)
	}
	wantSize := 8 + 8*D + 4 + 4 + 4
	if l.FixedSize != wantSize {
		t.Fatalf("FixedSize = %d, want %d", l.FixedSize, wantSize)
	}
	if got := l.Scalar("label").Offset; got != 0 {
		t.Errorf("label offset = %d, want 0", got)
	}
	arr := l.Array("features.data")
	if arr.Offset != 8 || arr.Count != D || arr.ElemPrim != udt.PrimFloat64 {
		t.Errorf("features.data slot = %+v", arr)
	}
	if got := arr.ElemOffset(2); got != 8+16 {
		t.Errorf("data[2] offset = %d, want 24", got)
	}
	if got := l.Scalar("features.offset").Offset; got != 8+8*D {
		t.Errorf("features.offset offset = %d, want %d", got, 8+8*D)
	}
	if got := l.Scalar("features.stride").Offset; got != 8+8*D+4 {
		t.Errorf("features.stride offset = %d", got)
	}
	if got := l.Scalar("features.length").Offset; got != 8+8*D+8 {
		t.Errorf("features.length offset = %d", got)
	}
	ns, na := l.NumSlots()
	if ns != 4 || na != 1 {
		t.Errorf("NumSlots = %d scalars %d arrays, want 4/1", ns, na)
	}
}

func TestCompileLayoutRejectsVST(t *testing.T) {
	lp := udt.LabeledPointType(false)
	if _, err := CompileLayout(lp, udt.Variable, nil); err == nil {
		t.Error("compiling a Variable layout must fail")
	}
	if _, err := CompileLayout(lp, udt.RecurDef, nil); err == nil {
		t.Error("compiling a RecurDef layout must fail")
	}
}

func TestCompileLayoutMissingLength(t *testing.T) {
	lp := udt.LabeledPointType(true)
	if _, err := CompileLayout(lp, udt.StaticFixed, nil); err == nil {
		t.Error("StaticFixed layout without length binding must fail")
	}
}

func TestCompileLayoutRFST(t *testing.T) {
	l, err := CompileLayout(udt.StringType(), udt.RuntimeFixed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.FixedSize != -1 {
		t.Errorf("RFST FixedSize = %d, want -1", l.FixedSize)
	}
}

func TestNestedArrayOfStructs(t *testing.T) {
	// Array of 3 Points inside a wrapper: flattening expands each element.
	point := udt.Struct("Point",
		udt.NewField("x", udt.Primitive(udt.PrimFloat64), false),
		udt.NewField("y", udt.Primitive(udt.PrimFloat64), false),
	)
	arr := udt.ArrayOf("Array[Point]", point)
	wrap := udt.Struct("Wrap",
		udt.NewField("id", udt.Primitive(udt.PrimInt64), false),
		udt.NewField("pts", arr, true),
	)
	l, err := CompileLayout(wrap, udt.StaticFixed, udt.Lengths{"Array[Point]": 3})
	if err != nil {
		t.Fatal(err)
	}
	if l.FixedSize != 8+3*16 {
		t.Fatalf("FixedSize = %d, want 56", l.FixedSize)
	}
	if got := l.Scalar("pts[1].y").Offset; got != 8+16+8 {
		t.Errorf("pts[1].y offset = %d, want 32", got)
	}
}

func TestScalarPanicsOnUnknownPath(t *testing.T) {
	l, err := CompileLayout(udt.LabeledPointType(true), udt.StaticFixed,
		udt.Lengths{"Array[float64]": 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown path should panic")
		}
	}()
	l.Scalar("no.such.field")
}

func TestAmbiguousTypeSetRejected(t *testing.T) {
	f := &udt.Field{
		Name:     "v",
		Final:    true,
		Declared: udt.Primitive(udt.PrimInt64),
		TypeSet:  []*udt.Type{udt.Primitive(udt.PrimInt64), udt.Primitive(udt.PrimFloat64)},
	}
	s := udt.Struct("Amb", f)
	if _, err := CompileLayout(s, udt.StaticFixed, nil); err == nil {
		t.Error("ambiguous type-set must be rejected for static layouts")
	}
}
