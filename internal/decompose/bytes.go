// Package decompose turns objects of safely-classified UDTs into compact
// byte segments inside memory page groups, and provides the accessor layer
// that transformed code uses to read fields directly from the raw bytes
// (paper §2.3, Figure 2 and Appendix B).
//
// A Layout is compiled from a classified type descriptor: for a
// StaticFixed type it yields constant field offsets (the synthesized SUDT
// constants of Appendix B); for a RuntimeFixed type it yields a sequential
// encoding with length-prefixed arrays. Codecs encode and decode values;
// the primitive accessors below are the replacement for field-access
// bytecode in the transformed program.
package decompose

import (
	"encoding/binary"
	"math"
)

// All decomposed data uses little-endian fixed-width encoding, matching
// what a JVM-offset-based layout would do and keeping accessors branch
// free.

// F64 reads a float64 at off.
func F64(b []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
}

// PutF64 writes a float64 at off.
func PutF64(b []byte, off int, v float64) {
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
}

// F32 reads a float32 at off.
func F32(b []byte, off int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b[off:]))
}

// PutF32 writes a float32 at off.
func PutF32(b []byte, off int, v float32) {
	binary.LittleEndian.PutUint32(b[off:], math.Float32bits(v))
}

// I64 reads an int64 at off.
func I64(b []byte, off int) int64 {
	return int64(binary.LittleEndian.Uint64(b[off:]))
}

// PutI64 writes an int64 at off.
func PutI64(b []byte, off int, v int64) {
	binary.LittleEndian.PutUint64(b[off:], uint64(v))
}

// I32 reads an int32 at off.
func I32(b []byte, off int) int32 {
	return int32(binary.LittleEndian.Uint32(b[off:]))
}

// PutI32 writes an int32 at off.
func PutI32(b []byte, off int, v int32) {
	binary.LittleEndian.PutUint32(b[off:], uint32(v))
}

// I16 reads an int16 at off.
func I16(b []byte, off int) int16 {
	return int16(binary.LittleEndian.Uint16(b[off:]))
}

// PutI16 writes an int16 at off.
func PutI16(b []byte, off int, v int16) {
	binary.LittleEndian.PutUint16(b[off:], uint16(v))
}

// I8 reads an int8 at off.
func I8(b []byte, off int) int8 { return int8(b[off]) }

// PutI8 writes an int8 at off.
func PutI8(b []byte, off int, v int8) { b[off] = byte(v) }

// Bool reads a bool at off.
func Bool(b []byte, off int) bool { return b[off] != 0 }

// PutBool writes a bool at off.
func PutBool(b []byte, off int, v bool) {
	if v {
		b[off] = 1
	} else {
		b[off] = 0
	}
}
