package decompose

import (
	"encoding/binary"
	"math"

	"deca/internal/memory"
)

// Codec encodes values of one UDT into the compact Deca byte layout and
// back. A Codec is the Go equivalent of the SUDT class Deca synthesizes
// per UDT (Appendix B): Encode is the transformed constructor (write
// initial values straight into the byte array), Decode is the transformed
// field read path, and Size is the synthesized data-size method.
//
// Encode must write exactly Size(v) bytes; Decode returns the value and the
// number of bytes consumed, so RuntimeFixed records can be scanned without
// an external index.
type Codec[T any] interface {
	// FixedSize returns the constant encoded size, or -1 when instances
	// vary (RuntimeFixed layouts).
	FixedSize() int
	// Size returns the encoded size of v in bytes.
	Size(v T) int
	// Encode writes v into seg, which holds exactly Size(v) bytes.
	Encode(seg []byte, v T)
	// Decode reads one value from the front of seg and returns the bytes
	// consumed.
	Decode(seg []byte) (T, int)
}

// Write encodes v into the page group and returns its segment pointer.
func Write[T any](g *memory.Group, c Codec[T], v T) memory.Ptr {
	seg, ptr := g.Alloc(c.Size(v))
	c.Encode(seg, v)
	return ptr
}

// ReadAt decodes the value at ptr. The segment may be shorter than the
// page remainder; Decode consumes only its own bytes.
func ReadAt[T any](g *memory.Group, c Codec[T], ptr memory.Ptr) T {
	page := g.Page(int(ptr.Page))
	v, _ := c.Decode(page[ptr.Off:])
	return v
}

// Scan decodes every value in the group in write order, calling yield for
// each. It stops early when yield returns false.
func Scan[T any](g *memory.Group, c Codec[T], yield func(T) bool) {
	for p := 0; p < g.NumPages(); p++ {
		page := g.Page(p)
		off := 0
		for off < len(page) {
			v, n := c.Decode(page[off:])
			if n <= 0 {
				panic("decompose: codec consumed no bytes")
			}
			if !yield(v) {
				return
			}
			off += n
		}
	}
}

// Count returns the number of encoded values in the group.
func Count[T any](g *memory.Group, c Codec[T]) int {
	n := 0
	Scan(g, c, func(T) bool { n++; return true })
	return n
}

//
// Built-in codecs for primitive and common composite shapes. These cover
// the key/value types of the paper's workloads (WordCount pairs, vertex
// ids, rank values, feature vectors).
//

// Int64Codec encodes int64 values (8 bytes, StaticFixed).
type Int64Codec struct{}

func (Int64Codec) FixedSize() int             { return 8 }
func (Int64Codec) Size(int64) int             { return 8 }
func (Int64Codec) Encode(seg []byte, v int64) { PutI64(seg, 0, v) }
func (Int64Codec) Decode(seg []byte) (int64, int) {
	return I64(seg, 0), 8
}

// Float64Codec encodes float64 values (8 bytes, StaticFixed).
type Float64Codec struct{}

func (Float64Codec) FixedSize() int               { return 8 }
func (Float64Codec) Size(float64) int             { return 8 }
func (Float64Codec) Encode(seg []byte, v float64) { PutF64(seg, 0, v) }
func (Float64Codec) Decode(seg []byte) (float64, int) {
	return F64(seg, 0), 8
}

// Int32Codec encodes int32 values (4 bytes, StaticFixed).
type Int32Codec struct{}

func (Int32Codec) FixedSize() int             { return 4 }
func (Int32Codec) Size(int32) int             { return 4 }
func (Int32Codec) Encode(seg []byte, v int32) { PutI32(seg, 0, v) }
func (Int32Codec) Decode(seg []byte) (int32, int) {
	return I32(seg, 0), 4
}

// StringCodec encodes strings as uint32 length + bytes (RuntimeFixed: the
// String UDT is a struct with a final byte array, §6.6).
type StringCodec struct{}

func (StringCodec) FixedSize() int    { return -1 }
func (StringCodec) Size(s string) int { return 4 + len(s) }
func (StringCodec) Encode(seg []byte, s string) {
	binary.LittleEndian.PutUint32(seg, uint32(len(s)))
	copy(seg[4:], s)
}
func (StringCodec) Decode(seg []byte) (string, int) {
	n := int(binary.LittleEndian.Uint32(seg))
	return string(seg[4 : 4+n]), 4 + n
}

// BytesCodec encodes raw byte slices as uint32 length + bytes.
type BytesCodec struct{}

func (BytesCodec) FixedSize() int    { return -1 }
func (BytesCodec) Size(b []byte) int { return 4 + len(b) }
func (BytesCodec) Encode(seg []byte, b []byte) {
	binary.LittleEndian.PutUint32(seg, uint32(len(b)))
	copy(seg[4:], b)
}
func (BytesCodec) Decode(seg []byte) ([]byte, int) {
	n := int(binary.LittleEndian.Uint32(seg))
	out := make([]byte, n)
	copy(out, seg[4:4+n])
	return out, 4 + n
}

// Float64VecCodec encodes fixed-dimension float64 vectors: the StaticFixed
// layout of the LR/KMeans feature arrays once the global analysis has
// proven the dimension constant (§3.3). Dim must match every encoded
// vector; Encode panics otherwise, because writing a differently-sized
// object would corrupt the byte layout — exactly the unsafety the
// classification rules out.
type Float64VecCodec struct{ Dim int }

func (c Float64VecCodec) FixedSize() int       { return 8 * c.Dim }
func (c Float64VecCodec) Size(v []float64) int { return 8 * c.Dim }
func (c Float64VecCodec) Encode(seg []byte, v []float64) {
	if len(v) != c.Dim {
		panic("decompose: vector dimension mismatch with StaticFixed layout")
	}
	for i, x := range v {
		binary.LittleEndian.PutUint64(seg[i*8:], math.Float64bits(x))
	}
}
func (c Float64VecCodec) Decode(seg []byte) ([]float64, int) {
	v := make([]float64, c.Dim)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(seg[i*8:]))
	}
	return v, 8 * c.Dim
}

// Int64VecCodec encodes fixed-dimension int64 vectors as raw
// little-endian words: the StaticFixed layout of constant-width integer
// arrays (feature ids, adjacency degrees) once the global analysis has
// proven the dimension constant (§3.3). Same contract as Float64VecCodec:
// Encode panics on a dimension mismatch.
type Int64VecCodec struct{ Dim int }

func (c Int64VecCodec) FixedSize() int     { return 8 * c.Dim }
func (c Int64VecCodec) Size(v []int64) int { return 8 * c.Dim }
func (c Int64VecCodec) Encode(seg []byte, v []int64) {
	if len(v) != c.Dim {
		panic("decompose: vector dimension mismatch with StaticFixed layout")
	}
	for i, x := range v {
		binary.LittleEndian.PutUint64(seg[i*8:], uint64(x))
	}
}
func (c Int64VecCodec) Decode(seg []byte) ([]int64, int) {
	v := make([]int64, c.Dim)
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(seg[i*8:]))
	}
	return v, 8 * c.Dim
}

// Float64SliceCodec encodes variable-length float64 slices with a uint32
// count prefix (RuntimeFixed).
type Float64SliceCodec struct{}

func (Float64SliceCodec) FixedSize() int       { return -1 }
func (Float64SliceCodec) Size(v []float64) int { return 4 + 8*len(v) }
func (Float64SliceCodec) Encode(seg []byte, v []float64) {
	binary.LittleEndian.PutUint32(seg, uint32(len(v)))
	for i, x := range v {
		binary.LittleEndian.PutUint64(seg[4+i*8:], math.Float64bits(x))
	}
}
func (Float64SliceCodec) Decode(seg []byte) ([]float64, int) {
	n := int(binary.LittleEndian.Uint32(seg))
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(seg[4+i*8:]))
	}
	return v, 4 + 8*n
}

// Int64SliceCodec encodes variable-length int64 slices with a uint32 count
// prefix (RuntimeFixed). Used for adjacency lists in PR/CC.
type Int64SliceCodec struct{}

func (Int64SliceCodec) FixedSize() int     { return -1 }
func (Int64SliceCodec) Size(v []int64) int { return 4 + 8*len(v) }
func (Int64SliceCodec) Encode(seg []byte, v []int64) {
	binary.LittleEndian.PutUint32(seg, uint32(len(v)))
	for i, x := range v {
		binary.LittleEndian.PutUint64(seg[4+i*8:], uint64(x))
	}
}
func (Int64SliceCodec) Decode(seg []byte) ([]int64, int) {
	n := int(binary.LittleEndian.Uint32(seg))
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(seg[4+i*8:]))
	}
	return v, 4 + 8*n
}

// Pair is a key-value record, the engine's shuffle currency (Spark's
// Tuple2).
type Pair[K any, V any] struct {
	Key   K
	Value V
}

// PairCodec combines a key codec and a value codec.
type PairCodec[K any, V any] struct {
	KeyCodec   Codec[K]
	ValueCodec Codec[V]
}

func (c PairCodec[K, V]) FixedSize() int {
	ks, vs := c.KeyCodec.FixedSize(), c.ValueCodec.FixedSize()
	if ks < 0 || vs < 0 {
		return -1
	}
	return ks + vs
}

func (c PairCodec[K, V]) Size(p Pair[K, V]) int {
	return c.KeyCodec.Size(p.Key) + c.ValueCodec.Size(p.Value)
}

func (c PairCodec[K, V]) Encode(seg []byte, p Pair[K, V]) {
	kn := c.KeyCodec.Size(p.Key)
	c.KeyCodec.Encode(seg[:kn], p.Key)
	c.ValueCodec.Encode(seg[kn:], p.Value)
}

func (c PairCodec[K, V]) Decode(seg []byte) (Pair[K, V], int) {
	k, kn := c.KeyCodec.Decode(seg)
	v, vn := c.ValueCodec.Decode(seg[kn:])
	return Pair[K, V]{Key: k, Value: v}, kn + vn
}
