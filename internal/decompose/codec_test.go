package decompose

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"deca/internal/analysis"
	"deca/internal/memory"
	"deca/internal/udt"
)

func TestPrimitiveAccessorsRoundTrip(t *testing.T) {
	b := make([]byte, 64)
	PutF64(b, 0, 3.14159)
	PutF32(b, 8, -2.5)
	PutI64(b, 12, -1<<62)
	PutI32(b, 20, -12345)
	PutI16(b, 24, -999)
	PutI8(b, 26, -7)
	PutBool(b, 27, true)
	PutBool(b, 28, false)

	if F64(b, 0) != 3.14159 {
		t.Error("F64 round trip failed")
	}
	if F32(b, 8) != -2.5 {
		t.Error("F32 round trip failed")
	}
	if I64(b, 12) != -1<<62 {
		t.Error("I64 round trip failed")
	}
	if I32(b, 20) != -12345 {
		t.Error("I32 round trip failed")
	}
	if I16(b, 24) != -999 {
		t.Error("I16 round trip failed")
	}
	if I8(b, 26) != -7 {
		t.Error("I8 round trip failed")
	}
	if !Bool(b, 27) || Bool(b, 28) {
		t.Error("Bool round trip failed")
	}
}

func TestBuiltinCodecsRoundTrip(t *testing.T) {
	m := memory.NewManager(64, 0)
	g := m.NewGroup()
	defer g.Release()

	p1 := Write[int64](g, Int64Codec{}, -42)
	p2 := Write[float64](g, Float64Codec{}, math.Pi)
	p3 := Write[string](g, StringCodec{}, "hello deca")
	p4 := Write[int32](g, Int32Codec{}, 7)
	p5 := Write(g, Float64SliceCodec{}, []float64{1, 2, 3})
	p6 := Write(g, Int64SliceCodec{}, []int64{9, 8})
	p7 := Write(g, BytesCodec{}, []byte{0xde, 0xca})

	if v := ReadAt[int64](g, Int64Codec{}, p1); v != -42 {
		t.Errorf("int64 = %d", v)
	}
	if v := ReadAt[float64](g, Float64Codec{}, p2); v != math.Pi {
		t.Errorf("float64 = %v", v)
	}
	if v := ReadAt[string](g, StringCodec{}, p3); v != "hello deca" {
		t.Errorf("string = %q", v)
	}
	if v := ReadAt[int32](g, Int32Codec{}, p4); v != 7 {
		t.Errorf("int32 = %d", v)
	}
	if v := ReadAt(g, Float64SliceCodec{}, p5); !reflect.DeepEqual(v, []float64{1, 2, 3}) {
		t.Errorf("[]float64 = %v", v)
	}
	if v := ReadAt(g, Int64SliceCodec{}, p6); !reflect.DeepEqual(v, []int64{9, 8}) {
		t.Errorf("[]int64 = %v", v)
	}
	if v := ReadAt(g, BytesCodec{}, p7); !reflect.DeepEqual(v, []byte{0xde, 0xca}) {
		t.Errorf("bytes = %v", v)
	}
}

func TestFixedSizes(t *testing.T) {
	if (Int64Codec{}).FixedSize() != 8 || (Float64Codec{}).FixedSize() != 8 || (Int32Codec{}).FixedSize() != 4 {
		t.Error("primitive codec fixed sizes wrong")
	}
	if (StringCodec{}).FixedSize() != -1 || (Float64SliceCodec{}).FixedSize() != -1 {
		t.Error("variable codecs must report -1")
	}
	if (Float64VecCodec{Dim: 10}).FixedSize() != 80 {
		t.Error("vec codec fixed size wrong")
	}
	pc := PairCodec[int64, float64]{KeyCodec: Int64Codec{}, ValueCodec: Float64Codec{}}
	if pc.FixedSize() != 16 {
		t.Error("pair of fixed should be fixed")
	}
	pv := PairCodec[string, float64]{KeyCodec: StringCodec{}, ValueCodec: Float64Codec{}}
	if pv.FixedSize() != -1 {
		t.Error("pair with variable key must be -1")
	}
}

func TestFloat64VecCodec(t *testing.T) {
	m := memory.NewManager(256, 0)
	g := m.NewGroup()
	defer g.Release()
	c := Float64VecCodec{Dim: 4}
	v := []float64{1.5, -2.5, 3.5, -4.5}
	p := Write(g, c, v)
	if got := ReadAt(g, c, p); !reflect.DeepEqual(got, v) {
		t.Errorf("vec = %v", got)
	}
}

func TestFloat64VecCodecDimMismatchPanics(t *testing.T) {
	m := memory.NewManager(256, 0)
	g := m.NewGroup()
	defer g.Release()
	c := Float64VecCodec{Dim: 4}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch must panic: it would corrupt the layout")
		}
	}()
	Write(g, c, []float64{1})
}

func TestScanOrderAndCount(t *testing.T) {
	m := memory.NewManager(32, 0) // small pages force multiple pages
	g := m.NewGroup()
	defer g.Release()
	c := PairCodec[string, int64]{KeyCodec: StringCodec{}, ValueCodec: Int64Codec{}}
	want := []Pair[string, int64]{
		{"alpha", 1}, {"beta", 2}, {"a-rather-long-key-here", 3}, {"d", 4},
	}
	for _, p := range want {
		Write(g, c, p)
	}
	var got []Pair[string, int64]
	Scan(g, c, func(p Pair[string, int64]) bool {
		got = append(got, p)
		return true
	})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Scan = %v, want %v", got, want)
	}
	if n := Count(g, c); n != len(want) {
		t.Errorf("Count = %d, want %d", n, len(want))
	}
}

func TestScanEarlyStop(t *testing.T) {
	m := memory.NewManager(64, 0)
	g := m.NewGroup()
	defer g.Release()
	for i := int64(0); i < 10; i++ {
		Write[int64](g, Int64Codec{}, i)
	}
	n := 0
	Scan[int64](g, Int64Codec{}, func(int64) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop consumed %d, want 3", n)
	}
}

type rcPoint struct {
	Label    float64
	Features []float64 `deca:"final"`
	Flag     bool
	Name     string `deca:"final"`
}

func TestReflectCodecRoundTrip(t *testing.T) {
	c, err := NewReflectCodec[rcPoint](nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.SizeType() != udt.RuntimeFixed {
		t.Fatalf("SizeType = %s, want RuntimeFixed", c.SizeType())
	}
	m := memory.NewManager(256, 0)
	g := m.NewGroup()
	defer g.Release()

	v := rcPoint{Label: 1.5, Features: []float64{1, 2, 3}, Flag: true, Name: "pt"}
	p := Write[rcPoint](g, c, v)
	got := ReadAt[rcPoint](g, c, p)
	if !reflect.DeepEqual(got, v) {
		t.Errorf("round trip = %+v, want %+v", got, v)
	}
}

func TestReflectCodecStaticFixed(t *testing.T) {
	type xy struct {
		X float64
		Y float64
	}
	c, err := NewReflectCodec[xy](nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.SizeType() != udt.StaticFixed {
		t.Fatalf("SizeType = %s", c.SizeType())
	}
	if c.FixedSize() != 16 {
		t.Errorf("FixedSize = %d, want 16", c.FixedSize())
	}
}

func TestReflectCodecRejectsVST(t *testing.T) {
	type grower struct {
		Buf []int64 // non-final slice: Variable
	}
	if _, err := NewReflectCodec[grower](nil); err == nil {
		t.Error("Variable type must be rejected")
	}
}

func TestReflectCodecRejectsRecursive(t *testing.T) {
	type node struct {
		Next *node
	}
	_ = node{}
	if _, err := NewReflectCodec[node](nil); err == nil {
		t.Error("recursive type must be rejected")
	}
}

func TestReflectCodecWithScope(t *testing.T) {
	// A non-final slice field is locally Variable, but program facts can
	// prove it init-only, refining to RuntimeFixed and enabling the codec.
	type point struct {
		Label    float64
		Features []float64
	}
	p := analysis.NewProgram()
	// The descriptor derived for point names the struct "point" and the
	// field "Features".
	p.AddCtor("point.<init>", "point").
		AssignField(analysis.FieldRef{Owner: "point", Field: "Features"}, 1)
	p.AddMethod("main").Call("point.<init>")
	scope := p.MustScope("main")

	c, err := NewReflectCodec[point](scope)
	if err != nil {
		t.Fatal(err)
	}
	if c.SizeType() != udt.RuntimeFixed {
		t.Errorf("SizeType = %s, want RuntimeFixed", c.SizeType())
	}
}

func TestReflectCodecNestedStruct(t *testing.T) {
	type inner struct {
		A int32
		B int16
	}
	type outer struct {
		X  float32
		In inner
		S  string `deca:"final"`
	}
	c, err := NewReflectCodec[outer](nil)
	if err != nil {
		t.Fatal(err)
	}
	m := memory.NewManager(128, 0)
	g := m.NewGroup()
	defer g.Release()
	v := outer{X: 2.5, In: inner{A: -3, B: 9}, S: "nested"}
	ptr := Write[outer](g, c, v)
	if got := ReadAt[outer](g, c, ptr); !reflect.DeepEqual(got, v) {
		t.Errorf("round trip = %+v, want %+v", got, v)
	}
}

func TestReflectCodecPointerField(t *testing.T) {
	type leaf struct {
		V int64
	}
	type holder struct {
		L *leaf `deca:"final"`
	}
	c, err := NewReflectCodec[holder](nil)
	if err != nil {
		t.Fatal(err)
	}
	m := memory.NewManager(128, 0)
	g := m.NewGroup()
	defer g.Release()

	ptr := Write[holder](g, c, holder{L: &leaf{V: 77}})
	got := ReadAt[holder](g, c, ptr)
	if got.L == nil || got.L.V != 77 {
		t.Errorf("round trip = %+v", got)
	}
	// nil pointers decompose as the zero value.
	ptr2 := Write[holder](g, c, holder{})
	got2 := ReadAt[holder](g, c, ptr2)
	if got2.L == nil || got2.L.V != 0 {
		t.Errorf("nil round trip = %+v", got2)
	}
}

// Property: pair codec round-trips arbitrary (string, int64) pairs through
// a page group with tiny pages.
func TestPairCodecProperty(t *testing.T) {
	m := memory.NewManager(48, 0)
	c := PairCodec[string, int64]{KeyCodec: StringCodec{}, ValueCodec: Int64Codec{}}
	prop := func(keys []string, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := m.NewGroup()
		defer g.Release()
		var want []Pair[string, int64]
		var ptrs []memory.Ptr
		for _, k := range keys {
			if len(k) > 30 {
				k = k[:30]
			}
			p := Pair[string, int64]{Key: k, Value: r.Int63()}
			want = append(want, p)
			ptrs = append(ptrs, Write(g, c, p))
		}
		for i, ptr := range ptrs {
			if got := ReadAt(g, c, ptr); got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestTransformedGradientLoop mirrors Figure 12: the transformed LR
// gradient computation reading label and features straight out of the page
// bytes using layout offsets, no object materialization.
func TestTransformedGradientLoop(t *testing.T) {
	const D = 3
	lp := udt.LabeledPointType(true)
	layout, err := CompileLayout(lp, udt.StaticFixed, udt.Lengths{"Array[float64]": D})
	if err != nil {
		t.Fatal(err)
	}
	m := memory.NewManager(1024, 0)
	g := m.NewGroup()
	defer g.Release()

	// Write two points: (label=1, f=[1,2,3]), (label=-1, f=[4,5,6]).
	write := func(label float64, f [D]float64) {
		seg, _ := g.Alloc(layout.FixedSize)
		PutF64(seg, layout.Scalar("label").Offset, label)
		slot := layout.Array("features.data")
		for i, x := range f {
			PutF64(seg, slot.ElemOffset(i), x)
		}
		PutI32(seg, layout.Scalar("features.length").Offset, D)
	}
	write(1, [D]float64{1, 2, 3})
	write(-1, [D]float64{4, 5, 6})

	// The transformed loop: sum label * features element-wise.
	labelOff := layout.Scalar("label").Offset
	slot := layout.Array("features.data")
	sum := make([]float64, D)
	for p := 0; p < g.NumPages(); p++ {
		page := g.Page(p)
		for off := 0; off+layout.FixedSize <= len(page); off += layout.FixedSize {
			seg := page[off : off+layout.FixedSize]
			label := F64(seg, labelOff)
			for i := 0; i < D; i++ {
				sum[i] += label * F64(seg, slot.ElemOffset(i))
			}
		}
	}
	want := []float64{1 - 4, 2 - 5, 3 - 6}
	if !reflect.DeepEqual(sum, want) {
		t.Errorf("gradient = %v, want %v", sum, want)
	}
}
