package decompose

import (
	"fmt"

	"deca/internal/udt"
)

// Layout is the compiled byte layout of a decomposable UDT. For a
// StaticFixed type every primitive field has a constant offset, computed
// exactly as Deca's synthesized SUDTs compute them: fields in declaration
// order, raw primitive widths, no object headers and no references
// (Figure 2). For a RuntimeFixed type the layout is sequential with each
// variable-length array preceded by a uint32 element count; offsets are
// computed per instance at access time, mirroring the synthesized
// data-size methods of Appendix B.
type Layout struct {
	Type     *udt.Type
	SizeType udt.SizeType

	// FixedSize is the constant byte size of every instance; valid only
	// when SizeType == StaticFixed.
	FixedSize int

	scalars map[string]ScalarSlot
	arrays  map[string]ArraySlot
}

// ScalarSlot locates one primitive field in a StaticFixed layout.
type ScalarSlot struct {
	Path   string // dotted field path from the root, e.g. "features.label"
	Offset int
	Prim   udt.Prim
}

// ArraySlot locates one fixed-length primitive array in a StaticFixed
// layout.
type ArraySlot struct {
	Path     string
	Offset   int
	Count    int
	ElemPrim udt.Prim
}

// ElemSize returns the byte width of one element.
func (a ArraySlot) ElemSize() int { return a.ElemPrim.Size() }

// ElemOffset returns the byte offset of element i.
func (a ArraySlot) ElemOffset(i int) int { return a.Offset + i*a.ElemPrim.Size() }

// CompileLayout builds the layout of t under the given classification.
// lengths binds the static element counts of fixed-length arrays (the
// resolved symbolic constants from the global analysis); it is required
// for StaticFixed types containing arrays and ignored otherwise. Types
// classified Variable or RecurDef cannot be compiled: decomposing them is
// unsafe, which is the whole point of the classification (§3.1).
func CompileLayout(t *udt.Type, sizeType udt.SizeType, lengths udt.Lengths) (*Layout, error) {
	if !sizeType.Decomposable() {
		return nil, fmt.Errorf("decompose: %s is %s and cannot be safely decomposed", t, sizeType)
	}
	l := &Layout{
		Type:     t,
		SizeType: sizeType,
		scalars:  make(map[string]ScalarSlot),
		arrays:   make(map[string]ArraySlot),
	}
	if sizeType == udt.StaticFixed {
		size, err := udt.StaticDataSize(t, lengths)
		if err != nil {
			return nil, err
		}
		l.FixedSize = size
		if err := l.flatten(t, "", 0, lengths); err != nil {
			return nil, err
		}
	} else {
		l.FixedSize = -1
	}
	return l, nil
}

// flatten assigns offsets to every primitive slot of a StaticFixed type.
func (l *Layout) flatten(t *udt.Type, path string, off int, lengths udt.Lengths) error {
	switch t.Kind {
	case udt.KindPrimitive:
		l.scalars[path] = ScalarSlot{Path: path, Offset: off, Prim: t.Prim}
		return nil
	case udt.KindArray:
		elem := singleRuntimeType(t.Elem)
		if elem == nil {
			return fmt.Errorf("decompose: array %s has an ambiguous element type-set", t.Name)
		}
		n, ok := lengths[t.Name]
		if !ok {
			return fmt.Errorf("decompose: no length bound for array %s", t.Name)
		}
		if elem.Kind == udt.KindPrimitive {
			l.arrays[path] = ArraySlot{Path: path, Offset: off, Count: n, ElemPrim: elem.Prim}
			return nil
		}
		elemSize, err := udt.StaticDataSize(elem, lengths)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			p := fmt.Sprintf("%s[%d]", path, i)
			if err := l.flatten(elem, p, off+i*elemSize, lengths); err != nil {
				return err
			}
		}
		return nil
	default:
		for _, f := range t.Fields {
			ft := singleRuntimeType(f)
			if ft == nil {
				return fmt.Errorf("decompose: field %s.%s has an ambiguous type-set", t.Name, f.Name)
			}
			p := f.Name
			if path != "" {
				p = path + "." + f.Name
			}
			if err := l.flatten(ft, p, off, lengths); err != nil {
				return err
			}
			fs, err := udt.StaticDataSize(ft, lengths)
			if err != nil {
				return err
			}
			off += fs
		}
		return nil
	}
}

// singleRuntimeType returns the field's sole runtime type, or nil when the
// type-set is empty or ambiguous. Static layouts require unambiguous
// shapes; a multi-type type-set of identical data-sizes still has no
// single field order, so it is rejected at compile time.
func singleRuntimeType(f *udt.Field) *udt.Type {
	rts := f.RuntimeTypes()
	if len(rts) != 1 {
		return nil
	}
	return rts[0]
}

// Scalar returns the slot of the primitive field at the dotted path. It
// panics on unknown paths: layouts are compiled from the same descriptors
// the accessing code is generated from, so a miss is a programming error.
func (l *Layout) Scalar(path string) ScalarSlot {
	s, ok := l.scalars[path]
	if !ok {
		panic(fmt.Sprintf("decompose: no scalar slot %q in layout of %s", path, l.Type))
	}
	return s
}

// Array returns the slot of the fixed-length primitive array at the dotted
// path.
func (l *Layout) Array(path string) ArraySlot {
	a, ok := l.arrays[path]
	if !ok {
		panic(fmt.Sprintf("decompose: no array slot %q in layout of %s", path, l.Type))
	}
	return a
}

// NumSlots returns the number of scalar and array slots (diagnostics).
func (l *Layout) NumSlots() (scalars, arrays int) {
	return len(l.scalars), len(l.arrays)
}
