package decompose

import (
	"math"
	"testing"

	"deca/internal/memory"
	"deca/internal/udt"
)

func lrAccessor(t *testing.T, d int) (*Accessor, *memory.Group) {
	t.Helper()
	layout, err := CompileLayout(udt.LabeledPointType(true), udt.StaticFixed,
		udt.Lengths{"Array[float64]": d})
	if err != nil {
		t.Fatal(err)
	}
	m := memory.NewManager(4096, 0)
	g := m.NewGroup()
	acc, err := NewAccessor(layout, g)
	if err != nil {
		t.Fatal(err)
	}
	return acc, g
}

// TestAccessorGradientLoop runs Figure 12's transformed computation
// through the *compiled layout* path: no hand-written codec anywhere —
// descriptor → classification → layout → accessor.
func TestAccessorGradientLoop(t *testing.T) {
	const d = 3
	acc, g := lrAccessor(t, d)
	defer g.Release()

	label := acc.F64("label")
	data := acc.VecF64("features.data")
	length := acc.I32("features.length")

	write := func(l float64, f [d]float64) {
		ptr := acc.Append()
		label.Set(ptr, l)
		for i, x := range f {
			data.SetAt(ptr, i, x)
		}
		length.Set(ptr, d)
	}
	write(1, [d]float64{1, 2, 3})
	write(-1, [d]float64{4, 5, 6})

	if acc.Records() != 2 {
		t.Fatalf("Records = %d", acc.Records())
	}
	if data.Len() != d {
		t.Fatalf("vector Len = %d", data.Len())
	}

	sum := make([]float64, d)
	acc.EachRecord(func(ptr memory.Ptr) bool {
		l := label.Get(ptr)
		for i := 0; i < d; i++ {
			sum[i] += l * data.At(ptr, i)
		}
		return true
	})
	want := []float64{-3, -3, -3}
	for i := range want {
		if math.Abs(sum[i]-want[i]) > 1e-12 {
			t.Errorf("sum[%d] = %v, want %v", i, sum[i], want[i])
		}
	}

	// CopyTo decodes in place.
	buf := make([]float64, d)
	acc.EachRecord(func(ptr memory.Ptr) bool {
		data.CopyTo(ptr, buf)
		return false // first record only
	})
	if buf[0] != 1 || buf[2] != 3 {
		t.Errorf("CopyTo = %v", buf)
	}
}

func TestAccessorRejectsRFST(t *testing.T) {
	layout, err := CompileLayout(udt.StringType(), udt.RuntimeFixed, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := memory.NewManager(1024, 0)
	g := m.NewGroup()
	defer g.Release()
	if _, err := NewAccessor(layout, g); err == nil {
		t.Error("accessor over a RuntimeFixed layout must be rejected")
	}
}

func TestAccessorTypeMismatchPanics(t *testing.T) {
	acc, g := lrAccessor(t, 2)
	defer g.Release()
	defer func() {
		if recover() == nil {
			t.Error("resolving label as int64 should panic")
		}
	}()
	acc.I64("label")
}

func TestAccessorI64AndI32Fields(t *testing.T) {
	rec := udt.Struct("Rec",
		udt.NewField("id", udt.Primitive(udt.PrimInt64), false),
		udt.NewField("tag", udt.Primitive(udt.PrimInt32), false),
	)
	layout, err := CompileLayout(rec, udt.StaticFixed, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := memory.NewManager(1024, 0)
	g := m.NewGroup()
	defer g.Release()
	acc, err := NewAccessor(layout, g)
	if err != nil {
		t.Fatal(err)
	}
	id := acc.I64("id")
	tag := acc.I32("tag")
	ptr := acc.Append()
	id.Set(ptr, -77)
	tag.Set(ptr, 12)
	if id.Get(ptr) != -77 || tag.Get(ptr) != 12 {
		t.Errorf("readback id=%d tag=%d", id.Get(ptr), tag.Get(ptr))
	}
}
