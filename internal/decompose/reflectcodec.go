package decompose

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"

	"deca/internal/analysis"
	"deca/internal/udt"
)

// ReflectCodec is the automatic transformation path: it derives a type
// descriptor from a Go struct via reflection, classifies it (locally, then
// globally against optional program facts), verifies it is safely
// decomposable, and builds encode/decode functions over the resulting
// layout. It is the runtime analogue of Deca's optimizer generating SUDT
// bytecode from the original classes; hand-written codecs remain available
// for hot paths, just as Deca's generated code is specialized per UDT.
type ReflectCodec[T any] struct {
	typ      *udt.Type
	sizeType udt.SizeType
	fixed    int
	goType   reflect.Type
}

// NewReflectCodec builds a codec for T. scope may be nil, in which case
// only the local classification applies. The codec refuses types that
// classify Variable or RecurDef — those are exactly the types Deca leaves
// as ordinary objects.
func NewReflectCodec[T any](scope *analysis.Scope) (*ReflectCodec[T], error) {
	var zero T
	gt := reflect.TypeOf(zero)
	if gt == nil {
		return nil, fmt.Errorf("decompose: cannot reflect on interface type")
	}
	desc, err := udt.Describe(gt)
	if err != nil {
		return nil, err
	}
	st := udt.Classify(desc)
	if scope != nil {
		st = analysis.NewClassifier(scope).Refine(desc, st)
	}
	if !st.Decomposable() {
		return nil, fmt.Errorf("decompose: %s classifies %s; cannot decompose", desc, st)
	}
	c := &ReflectCodec[T]{typ: desc, sizeType: st, fixed: -1, goType: gt}
	if st == udt.StaticFixed {
		// Static size is computable only when the type has no arrays (Go
		// slices always classify at best RuntimeFixed locally); with a
		// scope-refined SFST the concrete lengths are not derivable from
		// reflection alone, so encode sizes per value instead.
		if sz, err := udt.StaticDataSize(desc, nil); err == nil {
			c.fixed = sz
		}
	}
	return c, nil
}

// MustReflectCodec panics on error.
func MustReflectCodec[T any](scope *analysis.Scope) *ReflectCodec[T] {
	c, err := NewReflectCodec[T](scope)
	if err != nil {
		panic(err)
	}
	return c
}

// SizeType returns the classification the codec was built under.
func (c *ReflectCodec[T]) SizeType() udt.SizeType { return c.sizeType }

// Descriptor returns the derived type descriptor.
func (c *ReflectCodec[T]) Descriptor() *udt.Type { return c.typ }

// FixedSize implements Codec.
func (c *ReflectCodec[T]) FixedSize() int { return c.fixed }

// Size implements Codec.
func (c *ReflectCodec[T]) Size(v T) int {
	if c.fixed >= 0 {
		return c.fixed
	}
	return valueSize(reflect.ValueOf(v))
}

// Encode implements Codec.
func (c *ReflectCodec[T]) Encode(seg []byte, v T) {
	n := encodeValue(seg, reflect.ValueOf(v))
	if n != len(seg) {
		panic(fmt.Sprintf("decompose: reflect codec wrote %d of %d bytes", n, len(seg)))
	}
}

// Decode implements Codec.
func (c *ReflectCodec[T]) Decode(seg []byte) (T, int) {
	var v T
	rv := reflect.ValueOf(&v).Elem()
	n := decodeValue(seg, rv)
	return v, n
}

// derefOrZero follows a pointer, substituting the element type's zero
// value for nil (a nil reference decomposes as an all-zero segment; the
// layout cannot represent absence, so zero is the defined behaviour).
func derefOrZero(v reflect.Value) reflect.Value {
	if v.IsNil() {
		return reflect.Zero(v.Type().Elem())
	}
	return v.Elem()
}

func valueSize(v reflect.Value) int {
	switch v.Kind() {
	case reflect.Bool, reflect.Int8, reflect.Uint8:
		return 1
	case reflect.Int16, reflect.Uint16:
		return 2
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		return 4
	case reflect.Int64, reflect.Uint64, reflect.Int, reflect.Uint, reflect.Float64:
		return 8
	case reflect.String:
		return 4 + v.Len()
	case reflect.Slice, reflect.Array:
		n := 4
		for i := 0; i < v.Len(); i++ {
			n += valueSize(v.Index(i))
		}
		return n
	case reflect.Pointer:
		return valueSize(derefOrZero(v))
	case reflect.Struct:
		n := 0
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				continue
			}
			n += valueSize(v.Field(i))
		}
		return n
	default:
		panic(fmt.Sprintf("decompose: unsupported kind %s", v.Kind()))
	}
}

func encodeValue(seg []byte, v reflect.Value) int {
	switch v.Kind() {
	case reflect.Bool:
		PutBool(seg, 0, v.Bool())
		return 1
	case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64, reflect.Int:
		switch valueSize(v) {
		case 1:
			PutI8(seg, 0, int8(v.Int()))
			return 1
		case 2:
			PutI16(seg, 0, int16(v.Int()))
			return 2
		case 4:
			PutI32(seg, 0, int32(v.Int()))
			return 4
		default:
			PutI64(seg, 0, v.Int())
			return 8
		}
	case reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uint:
		switch valueSize(v) {
		case 1:
			seg[0] = byte(v.Uint())
			return 1
		case 2:
			binary.LittleEndian.PutUint16(seg, uint16(v.Uint()))
			return 2
		case 4:
			binary.LittleEndian.PutUint32(seg, uint32(v.Uint()))
			return 4
		default:
			binary.LittleEndian.PutUint64(seg, v.Uint())
			return 8
		}
	case reflect.Float32:
		PutF32(seg, 0, float32(v.Float()))
		return 4
	case reflect.Float64:
		PutF64(seg, 0, v.Float())
		return 8
	case reflect.String:
		binary.LittleEndian.PutUint32(seg, uint32(v.Len()))
		copy(seg[4:], v.String())
		return 4 + v.Len()
	case reflect.Slice, reflect.Array:
		binary.LittleEndian.PutUint32(seg, uint32(v.Len()))
		off := 4
		for i := 0; i < v.Len(); i++ {
			off += encodeValue(seg[off:], v.Index(i))
		}
		return off
	case reflect.Pointer:
		return encodeValue(seg, derefOrZero(v))
	case reflect.Struct:
		off := 0
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				continue
			}
			off += encodeValue(seg[off:], v.Field(i))
		}
		return off
	default:
		panic(fmt.Sprintf("decompose: unsupported kind %s", v.Kind()))
	}
}

func decodeValue(seg []byte, v reflect.Value) int {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(Bool(seg, 0))
		return 1
	case reflect.Int8:
		v.SetInt(int64(I8(seg, 0)))
		return 1
	case reflect.Int16:
		v.SetInt(int64(I16(seg, 0)))
		return 2
	case reflect.Int32:
		v.SetInt(int64(I32(seg, 0)))
		return 4
	case reflect.Int64, reflect.Int:
		v.SetInt(I64(seg, 0))
		return 8
	case reflect.Uint8:
		v.SetUint(uint64(seg[0]))
		return 1
	case reflect.Uint16:
		v.SetUint(uint64(binary.LittleEndian.Uint16(seg)))
		return 2
	case reflect.Uint32:
		v.SetUint(uint64(binary.LittleEndian.Uint32(seg)))
		return 4
	case reflect.Uint64, reflect.Uint:
		v.SetUint(binary.LittleEndian.Uint64(seg))
		return 8
	case reflect.Float32:
		v.SetFloat(float64(math.Float32frombits(binary.LittleEndian.Uint32(seg))))
		return 4
	case reflect.Float64:
		v.SetFloat(F64(seg, 0))
		return 8
	case reflect.String:
		n := int(binary.LittleEndian.Uint32(seg))
		v.SetString(string(seg[4 : 4+n]))
		return 4 + n
	case reflect.Slice:
		n := int(binary.LittleEndian.Uint32(seg))
		sl := reflect.MakeSlice(v.Type(), n, n)
		off := 4
		for i := 0; i < n; i++ {
			off += decodeValue(seg[off:], sl.Index(i))
		}
		v.Set(sl)
		return off
	case reflect.Array:
		n := int(binary.LittleEndian.Uint32(seg))
		off := 4
		for i := 0; i < n && i < v.Len(); i++ {
			off += decodeValue(seg[off:], v.Index(i))
		}
		return off
	case reflect.Pointer:
		if v.IsNil() {
			v.Set(reflect.New(v.Type().Elem()))
		}
		return decodeValue(seg, v.Elem())
	case reflect.Struct:
		off := 0
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				continue
			}
			off += decodeValue(seg[off:], v.Field(i))
		}
		return off
	default:
		panic(fmt.Sprintf("decompose: unsupported kind %s", v.Kind()))
	}
}
