package decompose

import (
	"testing"

	"deca/internal/memory"
)

type benchRec struct {
	Label    float64
	Features []float64 `deca:"final"`
}

func benchFeatures() []float64 {
	f := make([]float64, 10)
	for i := range f {
		f[i] = float64(i) * 1.5
	}
	return f
}

func BenchmarkReflectCodecEncode(b *testing.B) {
	c, err := NewReflectCodec[benchRec](nil)
	if err != nil {
		b.Fatal(err)
	}
	m := memory.NewManager(1<<20, 0)
	g := m.NewGroup()
	defer g.Release()
	rec := benchRec{Label: 1, Features: benchFeatures()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Len() > 32<<20 {
			b.StopTimer()
			g.Reset()
			b.StartTimer()
		}
		Write(g, c, rec)
	}
}

func BenchmarkVecCodecEncode(b *testing.B) {
	c := Float64VecCodec{Dim: 10}
	m := memory.NewManager(1<<20, 0)
	g := m.NewGroup()
	defer g.Release()
	v := benchFeatures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Len() > 32<<20 {
			b.StopTimer()
			g.Reset()
			b.StartTimer()
		}
		Write(g, c, v)
	}
}

func BenchmarkVecCodecDecode(b *testing.B) {
	c := Float64VecCodec{Dim: 10}
	m := memory.NewManager(1<<20, 0)
	g := m.NewGroup()
	defer g.Release()
	ptr := Write(g, c, benchFeatures())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ReadAt(g, c, ptr)
	}
}

// BenchmarkRawFieldAccess is the transformed-code access path: reading a
// field straight from page bytes, no decode, no allocation.
func BenchmarkRawFieldAccess(b *testing.B) {
	c := Float64VecCodec{Dim: 10}
	m := memory.NewManager(1<<20, 0)
	g := m.NewGroup()
	defer g.Release()
	ptr := Write(g, c, benchFeatures())
	seg := g.Bytes(ptr, c.FixedSize())
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += F64(seg, (i%10)*8)
	}
	_ = sink
}

func BenchmarkStringCodecRoundTrip(b *testing.B) {
	m := memory.NewManager(1<<20, 0)
	g := m.NewGroup()
	defer g.Release()
	ptr := Write[string](g, StringCodec{}, "a-representative-shuffle-key")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ReadAt[string](g, StringCodec{}, ptr)
	}
}
