package chaos

// PureDecisionFuncs is the single source of truth for which fault-
// coordinate and placement decision functions must be pure — computed
// from their inputs and the configured seed alone, with no wall clock,
// no global rand, and no map-iteration dependence. The chaos harness's
// reproducibility contract (same seed ⇒ same faults, across -race runs,
// restarts, and the multiprocess runner) and the scheduler's stable
// placement both rest on exactly these functions.
//
// deca-vet's determinism analyzer consumes this list directly: every
// entry must carry a //deca:pure annotation at its declaration (and,
// within chaos/sched, every //deca:pure function must appear here), so
// an exemption can't be added ad hoc in a far-away file — it has to be
// made in this one, documented place.
//
// Names are normalized full names: pointer markers and type-parameter
// lists stripped, e.g. "deca/internal/chaos.Injector.roll".
var PureDecisionFuncs = []string{
	// Fault-coordinate hashing: the seed → [0,1) roll every injected
	// fault decision derives from.
	"deca/internal/chaos.Injector.roll",
	// Straggler-delay coordinates.
	"deca/internal/chaos.Injector.delayHit",
	// Post-completion failure (fail-after-side-effects) coordinates.
	"deca/internal/chaos.Injector.AfterAttempt",
	// Fetch-fault decisions (per-output retry counters are deterministic
	// state, not clocks).
	"deca/internal/chaos.Injector.fetchFault",
	// Mid-merge reduce-death coordinates (exact targeting via
	// MergeFailMatch; the match predicate itself must stay pure too).
	"deca/internal/chaos.Injector.MergeFault",
	// Placement: partition → executor affinity and deterministic
	// re-placement after blacklisting.
	"deca/internal/sched.Cluster.Place",
	"deca/internal/sched.Cluster.placeLocked",
}
