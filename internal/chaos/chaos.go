// Package chaos is a deterministic, seeded fault-injection harness for
// the engine's fault-tolerance subsystem. It plugs into the scheduler
// through the sched.FaultInjector seam (task-level faults: injected
// attempt failures, post-success failures that model an executor dying
// before reporting, straggler delays, and a mid-stage executor kill) and
// wraps any transport.Transport (fetch-level faults that surface as
// retryable errors). Every decision is a pure hash of the seed and the
// fault's coordinates — (stage, partition, attempt) for tasks, (output
// id, try) for fetches — so a given seed injects the same faults on every
// run regardless of goroutine scheduling, and every recovery path is
// testable under -race without real sockets flaking.
//
// The executor kill models a Spark executor whose *compute* dies while
// its shuffle files survive on an external shuffle service: attempts
// placed on the dead executor fail (driving the scheduler's blacklist),
// but map outputs it registered earlier stay fetchable.
package chaos

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"deca/internal/sched"
	"deca/internal/transport"
)

// ErrInjected marks every chaos-injected fault; errors.Is(err, ErrInjected)
// distinguishes injected faults from organic ones in tests.
var ErrInjected = errors.New("chaos: injected fault")

// Injector decides, deterministically from its seed, which task attempts
// and fetches fail. Configure the exported fields before the run starts;
// they must not change while a job executes.
type Injector struct {
	// Seed drives every hash-based decision.
	Seed int64

	// TaskFailureRate is the probability an attempt fails before its body
	// runs, decided independently per (stage, part, attempt) — so retries
	// of an unlucky task reroll.
	TaskFailureRate float64
	// FailAfterRate is the probability a *successful* attempt is failed
	// after its side effects landed (the executor died before reporting):
	// the retry's map-output re-registration then displaces the completed
	// attempt's buffers. The scheduler applies it only to speculatable
	// (map) stages, whose side effects replace idempotently.
	FailAfterRate float64

	// TaskDelay stalls attempts selected by DelayRate (or DelayMatch) for
	// the given duration before their body runs — injected stragglers for
	// speculation. The stall aborts with sched.ErrCanceled when the
	// attempt's cancel signal fires (a speculative twin won).
	TaskDelay time.Duration
	DelayRate float64
	// DelayMatch, when non-nil, replaces DelayRate: exact targeting of
	// attempts to stall (tests).
	DelayMatch func(stage, part, attempt, exec int) bool
	// FailAfterMatch, when non-nil, replaces FailAfterRate (tests).
	FailAfterMatch func(stage, part, attempt, exec int) bool

	// KillExecutor, when ≥ 0, kills that executor after KillAfter
	// attempts have started on it: every later attempt placed there fails
	// immediately. In-process, outputs it already registered stay
	// fetchable (external shuffle service semantics); the multi-process
	// deployment additionally SIGKILLs the real executor process through
	// OnKill, so its outputs die with it and recovery must re-run the
	// producing stage.
	KillExecutor int
	KillAfter    int
	// OnKill, when set, fires exactly once — when the executor kill first
	// trips. The multiproc engine wires it to the process supervisor's
	// SIGKILL.
	OnKill func(exec int)

	// MergeFailMatch, when non-nil, fails a reduce attempt *mid-merge* —
	// after it has already consumed `consumed` map outputs — modeling the
	// executor dying partway through the merge. The engine consults it
	// from the reduce body after every merged output. Under the
	// stage-commit protocol such a failure is retryable: the consumed
	// outputs are still pinned and the retry re-fetches them.
	MergeFailMatch func(stage, part, attempt, consumed int) bool

	// FetchFailureRate is the probability a given map-output fetch try
	// fails with a retryable error, decided independently per (output id,
	// try) — the transport-level retry then recovers deterministically.
	FetchFailureRate float64
	// FailFetchN, when > 0, fails the Nth Fetch call (1-based, counted
	// across the run) exactly once. Which output that is depends on
	// goroutine scheduling; use FetchFailureRate for scheduling-independent
	// injection.
	FailFetchN int64

	killStarted atomic.Int64
	killFired   atomic.Bool
	fetchCount  atomic.Int64

	mu         sync.Mutex
	fetchTries map[transport.MapOutputID]int

	stats Stats
}

// Stats counts the faults the injector actually fired.
type Stats struct {
	TaskFailures  int64
	AfterFailures int64
	Delays        int64
	Kills         int64
	FetchFailures int64
	MergeFailures int64
}

// New returns an injector with no faults configured (KillExecutor -1).
func New(seed int64) *Injector {
	return &Injector{Seed: seed, KillExecutor: -1}
}

// Stats snapshots the injected-fault counters.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

func (i *Injector) count(f func(s *Stats)) {
	i.mu.Lock()
	f(&i.stats)
	i.mu.Unlock()
}

// roll hashes the seed and fault coordinates into a uniform [0, 1).
//
//deca:pure
func (i *Injector) roll(label string, a, b, c int64) float64 {
	h := uint64(i.Seed) * 0x9e3779b97f4a7c15
	for _, ch := range []byte(label) {
		h = (h ^ uint64(ch)) * 0x100000001b3
	}
	for _, v := range []int64{a, b, c} {
		h ^= uint64(v) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// BeforeAttempt implements sched.FaultInjector: executor kill, injected
// straggler delay, then injected attempt failure, in that order.
func (i *Injector) BeforeAttempt(stage, part, attempt, exec int, cancel <-chan struct{}) error {
	if i.KillExecutor >= 0 && exec == i.KillExecutor {
		if i.killStarted.Add(1) > int64(i.KillAfter) {
			i.count(func(s *Stats) { s.Kills++ })
			if i.OnKill != nil && i.killFired.CompareAndSwap(false, true) {
				i.OnKill(exec)
			}
			return fmt.Errorf("%w: executor %d is dead (stage %d task %d attempt %d)",
				ErrInjected, exec, stage, part, attempt)
		}
	}
	if i.TaskDelay > 0 && i.delayHit(stage, part, attempt, exec) {
		i.count(func(s *Stats) { s.Delays++ })
		select {
		case <-time.After(i.TaskDelay):
		case <-cancel:
			return sched.ErrCanceled
		}
	}
	if i.TaskFailureRate > 0 &&
		i.roll("task", int64(stage), int64(part), int64(attempt)) < i.TaskFailureRate {
		i.count(func(s *Stats) { s.TaskFailures++ })
		return fmt.Errorf("%w: task failure (stage %d task %d attempt %d on executor %d)",
			ErrInjected, stage, part, attempt, exec)
	}
	return nil
}

// AfterAttempt implements sched.FaultInjector: fail a completed attempt
// after its side effects (registrations) landed.
//
//deca:pure
func (i *Injector) AfterAttempt(stage, part, attempt, exec int) error {
	hit := false
	if i.FailAfterMatch != nil {
		hit = i.FailAfterMatch(stage, part, attempt, exec)
	} else if i.FailAfterRate > 0 {
		hit = i.roll("after", int64(stage), int64(part), int64(attempt)) < i.FailAfterRate
	}
	if !hit {
		return nil
	}
	i.count(func(s *Stats) { s.AfterFailures++ })
	return fmt.Errorf("%w: executor %d died after stage %d task %d attempt %d completed",
		ErrInjected, exec, stage, part, attempt)
}

// MergeFault decides whether a reduce attempt that has merged `consumed`
// map outputs dies here (MergeFailMatch exact targeting; tests).
//
//deca:pure
func (i *Injector) MergeFault(stage, part, attempt, consumed int) error {
	if i.MergeFailMatch == nil || !i.MergeFailMatch(stage, part, attempt, consumed) {
		return nil
	}
	i.count(func(s *Stats) { s.MergeFailures++ })
	return fmt.Errorf("%w: reduce attempt died mid-merge (stage %d task %d attempt %d, %d outputs consumed)",
		ErrInjected, stage, part, attempt, consumed)
}

// delayHit decides whether this attempt draws an injected straggler
// delay (the delay itself is served in BeforeAttempt; the decision is
// what must be pure).
//
//deca:pure
func (i *Injector) delayHit(stage, part, attempt, exec int) bool {
	if i.DelayMatch != nil {
		return i.DelayMatch(stage, part, attempt, exec)
	}
	return i.DelayRate > 0 &&
		i.roll("delay", int64(stage), int64(part), int64(attempt)) < i.DelayRate
}

// fetchFault decides whether this Fetch call fails. Each output id keeps
// its own try counter, so a fetch that failed rerolls on retry.
//
//deca:pure
func (i *Injector) fetchFault(id transport.MapOutputID) error {
	n := i.fetchCount.Add(1)
	if i.FailFetchN > 0 && n == i.FailFetchN {
		i.count(func(s *Stats) { s.FetchFailures++ })
		return fmt.Errorf("%w: fetch %d (%v) dropped", ErrInjected, n, id)
	}
	if i.FetchFailureRate <= 0 {
		return nil
	}
	i.mu.Lock()
	if i.fetchTries == nil {
		i.fetchTries = make(map[transport.MapOutputID]int)
	}
	try := i.fetchTries[id]
	i.fetchTries[id] = try + 1
	i.mu.Unlock()
	if i.roll("fetch", int64(id.Shuffle), int64(id.MapTask)<<20|int64(id.Reduce), int64(try)) < i.FetchFailureRate {
		i.count(func(s *Stats) { s.FetchFailures++ })
		return fmt.Errorf("%w: fetch of %v (try %d) dropped", ErrInjected, id, try+1)
	}
	return nil
}

// Transport wraps an inner transport with fetch-fault injection. Injected
// failures surface as retryable errors before the inner transport is
// consulted, so the registered output is never consumed by a failed
// fetch.
type Transport struct {
	inner transport.Transport
	inj   *Injector
}

// WrapTransport builds the chaos transport around inner.
func WrapTransport(inner transport.Transport, inj *Injector) *Transport {
	return &Transport{inner: inner, inj: inj}
}

// Register delegates to the inner transport.
func (t *Transport) Register(id transport.MapOutputID, p transport.Payload) (transport.Payload, bool) {
	return t.inner.Register(id, p)
}

// Fetch injects a fault or delegates. The streaming-decode hook passes
// through untouched: injected faults fire before any wire byte moves, so
// the registered output is never half-decoded by a failed fetch.
func (t *Transport) Fetch(id transport.MapOutputID, dstExecutor int, open transport.FrameOpen) (transport.Payload, bool, error) {
	if err := t.inj.fetchFault(id); err != nil {
		return transport.Payload{}, false, err
	}
	return t.inner.Fetch(id, dstExecutor, open)
}

// Commit delegates to the inner transport (commits are a driver
// decision, never a fault site).
func (t *Transport) Commit(ids []transport.MapOutputID) []transport.Payload {
	return t.inner.Commit(ids)
}

// Abort delegates to the inner transport.
func (t *Transport) Abort(ids []transport.MapOutputID) []transport.Payload {
	return t.inner.Abort(ids)
}

// Drop delegates to the inner transport.
func (t *Transport) Drop(shuffle transport.ShuffleID) []transport.Payload {
	return t.inner.Drop(shuffle)
}

// Stats delegates to the inner transport.
func (t *Transport) Stats() transport.Stats { return t.inner.Stats() }

// Close delegates to the inner transport.
func (t *Transport) Close() error { return t.inner.Close() }

// Pending forwards the inner transport's leak probe (tests).
func (t *Transport) Pending() int {
	if p, ok := t.inner.(interface{ Pending() int }); ok {
		return p.Pending()
	}
	return 0
}

// Inner returns the wrapped transport (tests).
func (t *Transport) Inner() transport.Transport { return t.inner }
