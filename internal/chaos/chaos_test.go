package chaos

import (
	"errors"
	"testing"
	"time"

	"deca/internal/sched"
	"deca/internal/transport"
)

// The injector must satisfy the scheduler's fault seam.
var _ sched.FaultInjector = (*Injector)(nil)

func TestRollIsDeterministicAndUniformish(t *testing.T) {
	a := New(42)
	b := New(42)
	other := New(43)
	var hits int
	const n = 10_000
	differs := false
	for i := 0; i < n; i++ {
		va := a.roll("task", int64(i), 3, 1)
		vb := b.roll("task", int64(i), 3, 1)
		if va != vb {
			t.Fatalf("same seed, different roll at %d: %v != %v", i, va, vb)
		}
		if va < 0 || va >= 1 {
			t.Fatalf("roll out of range: %v", va)
		}
		if va != other.roll("task", int64(i), 3, 1) {
			differs = true
		}
		if va < 0.05 {
			hits++
		}
	}
	if !differs {
		t.Error("different seeds rolled identically")
	}
	// A 5% threshold should hit near 5% of the time.
	if hits < n*3/100 || hits > n*7/100 {
		t.Errorf("5%% threshold hit %d/%d times", hits, n)
	}
}

func TestTaskFailureInjectionRerollsPerAttempt(t *testing.T) {
	inj := New(7)
	inj.TaskFailureRate = 0.5
	failedAttempt1 := -1
	for part := 0; part < 64; part++ {
		if inj.BeforeAttempt(1, part, 1, 0, nil) != nil {
			failedAttempt1 = part
			break
		}
	}
	if failedAttempt1 < 0 {
		t.Fatal("rate 0.5 injected nothing across 64 tasks")
	}
	// The same coordinates fail again (determinism)...
	err := inj.BeforeAttempt(1, failedAttempt1, 1, 0, nil)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("re-rolled decision changed: %v", err)
	}
	// ...but some retry succeeds within a few attempts (independent rolls).
	recovered := false
	for attempt := 2; attempt < 12; attempt++ {
		if inj.BeforeAttempt(1, failedAttempt1, attempt, 0, nil) == nil {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Error("10 consecutive attempts all injected at rate 0.5 (suspect hash)")
	}
}

func TestKillExecutorAfterN(t *testing.T) {
	inj := New(1)
	inj.KillExecutor = 2
	inj.KillAfter = 3
	for i := 0; i < 3; i++ {
		if err := inj.BeforeAttempt(1, i, 1, 2, nil); err != nil {
			t.Fatalf("attempt %d on executor 2 should pre-date the kill: %v", i, err)
		}
	}
	if err := inj.BeforeAttempt(1, 9, 1, 2, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("attempt after the kill survived: %v", err)
	}
	if err := inj.BeforeAttempt(1, 9, 1, 1, nil); err != nil {
		t.Fatalf("other executors must be unaffected: %v", err)
	}
	if got := inj.Stats().Kills; got != 1 {
		t.Errorf("kills = %d, want 1", got)
	}
}

func TestDelayHonorsCancellation(t *testing.T) {
	inj := New(1)
	inj.TaskDelay = 10 * time.Second
	inj.DelayMatch = func(stage, part, attempt, exec int) bool { return true }
	cancel := make(chan struct{})
	close(cancel)
	start := time.Now()
	err := inj.BeforeAttempt(1, 0, 1, 0, cancel)
	if !errors.Is(err, sched.ErrCanceled) {
		t.Fatalf("canceled delay returned %v, want sched.ErrCanceled", err)
	}
	if time.Since(start) > time.Second {
		t.Error("canceled delay still slept")
	}
}

func TestTransportWrapperInjectsAndDelegates(t *testing.T) {
	inner := transport.NewInProcess()
	inj := New(1)
	inj.FailFetchN = 1
	tr := WrapTransport(inner, inj)
	id := transport.MapOutputID{Shuffle: 1, MapTask: 0, Reduce: 0}
	tr.Register(id, transport.Payload{Data: "buf", SrcExecutor: 0, Bytes: 3})

	_, ok, err := tr.Fetch(id, 0, nil)
	if ok || !errors.Is(err, ErrInjected) {
		t.Fatalf("first fetch = (ok=%v, err=%v), want injected failure", ok, err)
	}
	if tr.Pending() != 1 {
		t.Fatalf("injected failure consumed the registration (pending=%d)", tr.Pending())
	}
	// The retry goes through untouched.
	p, ok, err := tr.Fetch(id, 0, nil)
	if err != nil || !ok || p.Data != "buf" {
		t.Fatalf("retry fetch = (%v, %v, %v)", p, ok, err)
	}
	if got := inj.Stats().FetchFailures; got != 1 {
		t.Errorf("fetch failures = %d, want 1", got)
	}
}

func TestFetchFailureRateRerollsPerTry(t *testing.T) {
	inj := New(11)
	inj.FetchFailureRate = 0.5
	id := transport.MapOutputID{Shuffle: 3, MapTask: 1, Reduce: 2}
	sawFailure, sawSuccess := false, false
	for try := 0; try < 32; try++ {
		if inj.fetchFault(id) != nil {
			sawFailure = true
		} else {
			sawSuccess = true
		}
		if sawFailure && sawSuccess {
			break
		}
	}
	if !sawFailure || !sawSuccess {
		t.Errorf("rate 0.5 over 32 tries: failure=%v success=%v", sawFailure, sawSuccess)
	}
}
