// Package memory implements Deca's page-based memory manager (§4.3.1).
//
// Deca stores decomposed objects in logical memory pages: byte arrays with
// a common fixed size. Each data container (cache block, shuffle buffer)
// owns a page group; a page-info structure tracks the group's pages, the
// end offset of the last page, and a sequential cursor. Because the
// garbage collector only sees a handful of large byte slices instead of
// millions of small objects, tracing cost collapses; when a container's
// lifetime ends, releasing the group reclaims all of its space at once.
//
// The Manager hands out pages from a free pool so that steady-state
// execution allocates no new heap memory at all, and accounts the bytes in
// use against an optional soft budget that the cache and shuffle layers
// consult for eviction and spilling decisions.
package memory

import (
	"fmt"
	"sync"
	"sync/atomic"

	"deca/internal/obs"
)

// DefaultPageSize is the page size used when a Manager is created with a
// non-positive size. The paper picks page sizes so that each executor holds
// only a moderate number of pages; 1 MiB gives that for laptop-scale heaps.
const DefaultPageSize = 1 << 20

// Stats is a snapshot of manager counters.
type Stats struct {
	PageSize       int
	PagesAllocated uint64 // pages created from the Go heap
	PagesReused    uint64 // pages served from the free pool
	PagesReleased  uint64 // pages returned by group release
	BytesInUse     int64  // bytes of live pages (allocated to groups)
	BytesPooled    int64  // bytes parked in the free pool
	LiveGroups     int64
}

// Manager allocates fixed-size pages, pools released ones, and tracks a
// soft memory budget. It is safe for concurrent use.
//
// The pool keeps two free lists: standard-size pages in a LIFO stack
// served by popping the tail (O(1) under the global mutex — the hot path
// every shuffle buffer and cache block allocation takes), and the rare
// oversized pages — dedicated pages for single objects larger than the
// page size — in a separate, small list scanned only when an oversized
// request arrives.
type Manager struct {
	pageSize int
	limit    int64 // soft budget in bytes; 0 means unlimited

	mu         sync.Mutex
	free       [][]byte // standard-size pages; pop from the tail
	freeBig    [][]byte // oversized pages; scanned only for oversized wants
	pooledMax  int      // max standard pages kept in the pool
	bigMax     int      // max oversized pages kept in the pool
	inUse      int64
	pooled     int64
	allocated  uint64
	reused     uint64
	released   uint64
	liveGroups int64

	// rec receives page lifecycle events (nil = observability off). Set
	// once via SetRecorder before the manager sees concurrent use; events
	// carry only counts and byte sizes, never Ptrs or Groups.
	rec     *obs.Recorder
	recExec int32
}

// SetRecorder attaches an observability recorder; page alloc / adopt /
// release events are tagged with exec. Call before concurrent use.
func (m *Manager) SetRecorder(r *obs.Recorder, exec int32) {
	m.rec = r
	m.recExec = exec
}

// NewManager returns a Manager with the given page size and soft budget in
// bytes (0 = unlimited). Non-positive pageSize selects DefaultPageSize.
func NewManager(pageSize int, limit int64) *Manager {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	m := &Manager{pageSize: pageSize, limit: limit}
	// Keep at most the budget's worth of pages pooled, or a generous
	// default when unlimited. Oversized pages are exceptional by
	// construction, so their pool stays small.
	m.pooledMax = 1024
	if limit > 0 {
		if n := int(limit / int64(pageSize)); n > 0 {
			m.pooledMax = n
		}
	}
	m.bigMax = 16
	return m
}

// PageSize returns the fixed page size in bytes.
func (m *Manager) PageSize() int { return m.pageSize }

// Limit returns the soft budget (0 = unlimited).
func (m *Manager) Limit() int64 { return m.limit }

// InUse returns the bytes currently held by live page groups.
func (m *Manager) InUse() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inUse
}

// OverBudget reports whether live pages exceed the soft budget.
func (m *Manager) OverBudget() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.limit > 0 && m.inUse > m.limit
}

// Stats returns a snapshot of the manager counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		PageSize:       m.pageSize,
		PagesAllocated: m.allocated,
		PagesReused:    m.reused,
		PagesReleased:  m.released,
		BytesInUse:     m.inUse,
		BytesPooled:    m.pooled,
		LiveGroups:     m.liveGroups,
	}
}

// getPage returns a zero-length page with capacity ≥ want (normally the
// page size; larger only for oversized single objects). Standard requests
// pop the free stack's tail — O(1); only oversized requests scan the
// (small, separate) oversized pool.
func (m *Manager) getPage(want int) []byte {
	m.mu.Lock()
	if want <= m.pageSize {
		if n := len(m.free); n > 0 {
			p := m.free[n-1]
			m.free[n-1] = nil
			m.free = m.free[:n-1]
			m.pooled -= int64(cap(p))
			m.reused++
			m.inUse += int64(cap(p))
			m.mu.Unlock()
			return p[:0]
		}
		m.allocated++
		allocated := m.allocated
		m.inUse += int64(m.pageSize)
		m.mu.Unlock()
		m.rec.Record(obs.Event{
			Kind: obs.KindPageAlloc, Exec: m.recExec,
			A: int64(allocated), B: int64(m.pageSize),
		})
		return make([]byte, 0, m.pageSize)
	}
	// Oversized: first fit in the dedicated pool.
	for i := len(m.freeBig) - 1; i >= 0; i-- {
		if cap(m.freeBig[i]) >= want {
			p := m.freeBig[i]
			m.freeBig[i] = m.freeBig[len(m.freeBig)-1]
			m.freeBig[len(m.freeBig)-1] = nil
			m.freeBig = m.freeBig[:len(m.freeBig)-1]
			m.pooled -= int64(cap(p))
			m.reused++
			m.inUse += int64(cap(p))
			m.mu.Unlock()
			return p[:0]
		}
	}
	m.allocated++
	allocated := m.allocated
	m.inUse += int64(want)
	m.mu.Unlock()
	m.rec.Record(obs.Event{
		Kind: obs.KindPageAlloc, Exec: m.recExec,
		A: int64(allocated), B: int64(want),
	})
	return make([]byte, 0, want)
}

// putPages returns pages to the pool (or drops them if the pool is full).
func (m *Manager) putPages(pages [][]byte) {
	if len(pages) > 0 {
		m.rec.Record(obs.Event{
			Kind: obs.KindPageRelease, Exec: m.recExec, A: int64(len(pages)),
		})
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range pages {
		m.inUse -= int64(cap(p))
		m.released++
		switch {
		case cap(p) == m.pageSize && len(m.free) < m.pooledMax:
			m.free = append(m.free, p[:0])
			m.pooled += int64(cap(p))
		case cap(p) > m.pageSize && len(m.freeBig) < m.bigMax:
			m.freeBig = append(m.freeBig, p[:0])
			m.pooled += int64(cap(p))
		}
	}
}

// Ptr locates the start of a byte segment within a page group: page index
// and offset within the page. It is the in-page pointer the shuffle
// buffers' pointer arrays store (§4.3.2, Figure 6).
type Ptr struct {
	Page int32
	Off  int32
}

func (p Ptr) String() string { return fmt.Sprintf("page %d off %d", p.Page, p.Off) }

// Rebase translates a pointer minted inside a source group into the
// address space of a group that adopted the source's pages at page index
// base (the value AdoptPages returned). It is the group-spanning segment
// reference of the zero-copy shuffle merge: a merged container addresses
// segments across several retained source groups through rebased
// pointers, without the bytes ever moving.
func (p Ptr) Rebase(base int) Ptr {
	return Ptr{Page: p.Page + int32(base), Off: p.Off}
}

// Group is a page group plus its page-info metadata (§4.3.1): the page
// array, the end offset of the unused part of the last page, and a
// reference count used when secondary containers share the group
// (§4.3.3). Groups are not safe for concurrent mutation; the reference
// count is atomic so release may happen from any goroutine.
//
// Objects never span pages: an allocation that does not fit in the last
// page's remainder starts a new page. Oversized allocations get a
// dedicated, larger page.
//
// A group's page array may mix pages it allocated itself with pages
// *adopted* from other groups (AdoptPages): adopted pages are addressed
// exactly like owned ones — cursors and pointers span them transparently —
// but they are returned to the manager by their owning group, whose
// lifetime the adopter pins through deps.
type Group struct {
	m     *Manager
	pages [][]byte
	// adopted marks pages shared from another group via AdoptPages; nil
	// until the first adoption, so the common non-merged group pays
	// nothing. Adopted pages are excluded from putPages and sealed
	// against further Alloc.
	adopted []bool
	bytes   int64
	refs    atomic.Int32
	deps    []*Group // page groups of primary containers (Fig. 7(a) depPages)
}

// NewGroup returns an empty page group with reference count 1.
func (m *Manager) NewGroup() *Group {
	g := &Group{m: m}
	g.refs.Store(1)
	m.mu.Lock()
	m.liveGroups++
	m.mu.Unlock()
	return g
}

// Alloc reserves n contiguous bytes and returns the writable segment along
// with its pointer. The segment is zeroed only if it comes from a fresh
// page; callers overwrite it fully.
func (g *Group) Alloc(n int) ([]byte, Ptr) {
	g.checkLive()
	if n < 0 {
		panic("memory: negative allocation")
	}
	last := len(g.pages) - 1
	if last < 0 || g.isAdopted(last) || cap(g.pages[last])-len(g.pages[last]) < n {
		g.pages = append(g.pages, g.m.getPage(n))
		if g.adopted != nil {
			g.adopted = append(g.adopted, false)
		}
		last = len(g.pages) - 1
	}
	p := g.pages[last]
	off := len(p)
	g.pages[last] = p[:off+n]
	g.bytes += int64(n)
	return g.pages[last][off : off+n], Ptr{Page: int32(last), Off: int32(off)}
}

// Append copies b into the group and returns its pointer.
func (g *Group) Append(b []byte) Ptr {
	seg, ptr := g.Alloc(len(b))
	copy(seg, b)
	return ptr
}

// Bytes returns the n-byte segment starting at ptr. It panics if the range
// is out of bounds — that is a decomposition-safety bug, the condition
// Deca's classification exists to prevent.
func (g *Group) Bytes(ptr Ptr, n int) []byte {
	g.checkLive()
	return g.pages[ptr.Page][ptr.Off : int(ptr.Off)+n]
}

// CheckedBytes is Bytes returning an error instead of panicking, for
// callers validating untrusted pointers (e.g. after reloading a spill).
func (g *Group) CheckedBytes(ptr Ptr, n int) ([]byte, error) {
	if g.refs.Load() <= 0 {
		return nil, fmt.Errorf("memory: use of released page group")
	}
	if ptr.Page < 0 || int(ptr.Page) >= len(g.pages) {
		return nil, fmt.Errorf("memory: page %d out of range (%d pages)", ptr.Page, len(g.pages))
	}
	p := g.pages[ptr.Page]
	if ptr.Off < 0 || int(ptr.Off)+n > len(p) {
		return nil, fmt.Errorf("memory: segment [%d,%d) out of range (page len %d)", ptr.Off, int(ptr.Off)+n, len(p))
	}
	return p[ptr.Off : int(ptr.Off)+n], nil
}

// Page returns the used portion of page i.
func (g *Group) Page(i int) []byte {
	g.checkLive()
	return g.pages[i]
}

// NumPages returns the number of pages in the group.
func (g *Group) NumPages() int { return len(g.pages) }

// Len returns the total number of data bytes stored.
func (g *Group) Len() int64 { return g.bytes }

// EndOffset returns the start offset of the unused part of the last page
// (the paper's endOffset field). Zero when the group is empty.
func (g *Group) EndOffset() int {
	if len(g.pages) == 0 {
		return 0
	}
	return len(g.pages[len(g.pages)-1])
}

// Footprint returns the bytes of page capacity held (≥ Len).
func (g *Group) Footprint() int64 {
	var total int64
	for _, p := range g.pages {
		total += int64(cap(p))
	}
	return total
}

// Retain increments the reference count: a secondary container sharing the
// group copies its page-info and retains it (§4.3.3).
func (g *Group) Retain() *Group {
	if g.refs.Add(1) <= 1 {
		panic("memory: Retain on released page group")
	}
	return g
}

// AddDep records a dependency on another group (the depPages field of a
// secondary container's page-info, Figure 7(a)) and retains it. The
// dependency is released when g is.
func (g *Group) AddDep(dep *Group) {
	g.checkLive()
	g.deps = append(g.deps, dep.Retain())
}

// Deps returns the dependent (primary) groups.
func (g *Group) Deps() []*Group { return g.deps }

// isAdopted reports whether page i was adopted from another group.
func (g *Group) isAdopted(i int) bool { return g.adopted != nil && g.adopted[i] }

// AdoptPages appends src's page array to g by reference — no data bytes
// move — and returns the page index the first adopted page landed on, so
// pointers into src translate into g with Ptr.Rebase(base). The source
// group is retained as a dependency (AddDep) and stays alive, with its
// pages returning to its own manager exactly once, until g releases.
//
// This is the zero-copy merge primitive: a reduce-side container adopts
// each fetched map output's page group and addresses all of them through
// one group-spanning page array. Adopted pages are sealed — a subsequent
// Alloc on g starts a fresh owned page rather than extending a shared
// one. The caller owns the transfer contract: after adopting, the source
// must not grow, and segments reachable from g may be mutated in place
// (combine-in-place on key collisions), so the source's contents must not
// be read independently afterwards.
func (g *Group) AdoptPages(src *Group) int {
	g.checkLive()
	src.checkLive()
	if src == g {
		panic("memory: group cannot adopt its own pages")
	}
	base := len(g.pages)
	if len(src.pages) == 0 {
		return base
	}
	if g.adopted == nil {
		g.adopted = make([]bool, base, base+len(src.pages))
	}
	g.pages = append(g.pages, src.pages...)
	for range src.pages {
		g.adopted = append(g.adopted, true)
	}
	g.bytes += src.bytes
	g.AddDep(src)
	src.rehome(g.m)
	g.m.rec.Record(obs.Event{
		Kind: obs.KindPageAdopt, Exec: g.m.recExec, A: int64(len(src.pages)),
	})
	return base
}

// rehome transfers the group's page accounting — and the pool its owned
// pages will eventually return to — to the adopter's manager, then
// re-homes its own dependencies the same way. Cross-executor adoption
// (a reduce container adopting a map output allocated on another
// executor) would otherwise leave the source executor's budget charged
// for bytes the reduce executor's container now holds, for as long as
// the memoized shuffle output lives.
func (g *Group) rehome(dst *Manager) {
	if g.m == dst {
		return
	}
	var owned int64
	for i, p := range g.pages {
		if !g.isAdopted(i) {
			owned += int64(cap(p))
		}
	}
	src := g.m
	src.mu.Lock()
	src.inUse -= owned
	src.liveGroups--
	src.mu.Unlock()
	dst.mu.Lock()
	dst.inUse += owned
	dst.liveGroups++
	dst.mu.Unlock()
	g.m = dst
	for _, d := range g.deps {
		d.rehome(dst)
	}
}

// reclaim returns g's owned pages to its manager and drops the page
// array; adopted pages are left to their owning groups, which the caller
// releases through deps.
func (g *Group) reclaim() {
	if g.adopted == nil {
		g.m.putPages(g.pages)
	} else {
		owned := g.pages[:0]
		for i, p := range g.pages {
			if !g.adopted[i] {
				owned = append(owned, p)
			}
		}
		g.m.putPages(owned)
	}
	g.pages = nil
	g.adopted = nil
	g.bytes = 0
}

// Release decrements the reference count; the last release returns all
// pages to the manager's pool and releases dependencies. Releasing more
// times than retained panics: refcount bugs must not be silent.
func (g *Group) Release() {
	n := g.refs.Add(-1)
	if n < 0 {
		panic("memory: page group over-released")
	}
	if n > 0 {
		return
	}
	g.reclaim()
	g.m.mu.Lock()
	g.m.liveGroups--
	g.m.mu.Unlock()
	for _, d := range g.deps {
		d.Release()
	}
	g.deps = nil
}

// Reset drops the group's content but keeps it alive, returning its owned
// pages to the pool and releasing any adopted dependencies. Used when a
// shuffle buffer spills and restarts.
func (g *Group) Reset() {
	g.checkLive()
	g.reclaim()
	for _, d := range g.deps {
		d.Release()
	}
	g.deps = nil
}

// Refs returns the current reference count (for tests and diagnostics).
func (g *Group) Refs() int32 { return g.refs.Load() }

func (g *Group) checkLive() {
	if g.refs.Load() <= 0 {
		panic("memory: use of released page group")
	}
}

// Cursor scans a group sequentially; it is the paper's (curPage,
// curOffset) pair. Next returns consecutive segments of caller-known
// sizes, as produced by sequential Alloc/Append calls.
type Cursor struct {
	g    *Group
	page int
	off  int
}

// Scan returns a cursor positioned at the first byte of the group.
func (g *Group) Scan() *Cursor { return &Cursor{g: g} }

// Done reports whether the cursor has consumed every byte.
func (c *Cursor) Done() bool {
	for c.page < len(c.g.pages) {
		if c.off < len(c.g.pages[c.page]) {
			return false
		}
		c.page++
		c.off = 0
	}
	return true
}

// Next returns the next n-byte segment. It panics when fewer than n bytes
// remain in the current page and the following page cannot satisfy the
// request either — segments never span pages, so a well-formed reader
// always asks for exactly the sizes that were written.
func (c *Cursor) Next(n int) []byte {
	c.g.checkLive()
	for c.page < len(c.g.pages) {
		p := c.g.pages[c.page]
		if c.off < len(p) {
			if c.off+n > len(p) {
				panic(fmt.Sprintf("memory: cursor read of %d bytes exceeds page remainder %d", n, len(p)-c.off))
			}
			seg := p[c.off : c.off+n]
			c.off += n
			return seg
		}
		c.page++
		c.off = 0
	}
	panic("memory: cursor read past end of page group")
}

// Ptr returns the position the next read will start from.
func (c *Cursor) Ptr() Ptr { return Ptr{Page: int32(c.page), Off: int32(c.off)} }

// Seek repositions the cursor.
func (c *Cursor) Seek(p Ptr) {
	c.page = int(p.Page)
	c.off = int(p.Off)
}
