package memory

import (
	"bytes"
	"testing"
)

// put fills a segment with a repeated byte so tests can recognize it later.
func put(g *Group, b byte, n int) Ptr {
	seg, ptr := g.Alloc(n)
	for i := range seg {
		seg[i] = b
	}
	return ptr
}

func TestAdoptPagesSpansGroups(t *testing.T) {
	m := NewManager(64, 0)
	dst := m.NewGroup()
	src1 := m.NewGroup()
	src2 := m.NewGroup()

	pd := put(dst, 'd', 16)
	p1 := put(src1, 'a', 100) // oversized for a 64-byte page
	p2 := put(src2, 'b', 16)

	base1 := dst.AdoptPages(src1)
	base2 := dst.AdoptPages(src2)
	if base1 != 1 || base2 != 2 {
		t.Fatalf("bases = %d, %d; want 1, 2", base1, base2)
	}

	if got := dst.Bytes(pd, 16); !bytes.Equal(got, bytes.Repeat([]byte{'d'}, 16)) {
		t.Errorf("own segment corrupted: %q", got)
	}
	if got := dst.Bytes(p1.Rebase(base1), 100); !bytes.Equal(got, bytes.Repeat([]byte{'a'}, 100)) {
		t.Errorf("adopted segment 1 wrong: %q", got[:8])
	}
	if got := dst.Bytes(p2.Rebase(base2), 16); !bytes.Equal(got, bytes.Repeat([]byte{'b'}, 16)) {
		t.Errorf("adopted segment 2 wrong: %q", got)
	}
	if dst.Len() != 16+100+16 {
		t.Errorf("Len = %d, want 132", dst.Len())
	}

	// A cursor walks owned and adopted pages in sequence.
	c := dst.Scan()
	for _, want := range []struct {
		b byte
		n int
	}{{'d', 16}, {'a', 100}, {'b', 16}} {
		seg := c.Next(want.n)
		if !bytes.Equal(seg, bytes.Repeat([]byte{want.b}, want.n)) {
			t.Errorf("cursor segment %c mismatch", want.b)
		}
	}
	if !c.Done() {
		t.Error("cursor should be exhausted")
	}

	src1.Release()
	src2.Release()
	dst.Release()
	if in := m.InUse(); in != 0 {
		t.Errorf("InUse = %d after releasing everything", in)
	}
}

func TestAdoptedPagesSurviveSourceRelease(t *testing.T) {
	m := NewManager(64, 0)
	dst := m.NewGroup()
	src := m.NewGroup()
	p := put(src, 'x', 32)
	base := dst.AdoptPages(src)

	if src.Refs() != 2 {
		t.Fatalf("src refs = %d, want 2 (owner + adopter)", src.Refs())
	}
	inUse := m.InUse()
	released := m.Stats().PagesReleased

	src.Release() // owner lets go; the adopter's dep keeps the pages live
	if src.Refs() != 1 {
		t.Fatalf("src refs after owner release = %d, want 1", src.Refs())
	}
	if got := m.InUse(); got != inUse {
		t.Errorf("InUse changed on deferred release: %d -> %d", inUse, got)
	}
	if got := dst.Bytes(p.Rebase(base), 32); !bytes.Equal(got, bytes.Repeat([]byte{'x'}, 32)) {
		t.Errorf("adopted bytes lost after source release: %q", got)
	}

	dst.Release() // frees dst and, through deps, src's pages — exactly once
	if got := m.InUse(); got != 0 {
		t.Errorf("InUse = %d after final release", got)
	}
	if got := m.Stats().PagesReleased - released; got != 1 {
		t.Errorf("pages released %d times, want exactly once", got)
	}

	// Over-release must still panic: the source is already fully released.
	defer func() {
		if recover() == nil {
			t.Error("expected panic on over-release of adopted source group")
		}
	}()
	src.Release()
}

func TestAllocAfterAdoptStartsOwnedPage(t *testing.T) {
	m := NewManager(64, 0)
	src := m.NewGroup()
	put(src, 's', 8) // leaves 56 free bytes in src's page
	dst := m.NewGroup()
	dst.AdoptPages(src)

	// The adopted page has room, but g must not write into shared memory:
	// the next Alloc starts a fresh owned page.
	_, ptr := dst.Alloc(8)
	if int(ptr.Page) != dst.NumPages()-1 || dst.isAdopted(int(ptr.Page)) {
		t.Fatalf("Alloc landed on adopted page: %v", ptr)
	}
	if got := src.Page(0); len(got) != 8 {
		t.Errorf("source page grew to %d bytes under the adopter's Alloc", len(got))
	}
	src.Release()
	dst.Release()
}

func TestResetReleasesAdoptedDeps(t *testing.T) {
	m := NewManager(64, 0)
	src := m.NewGroup()
	put(src, 's', 8)
	dst := m.NewGroup()
	put(dst, 'd', 8)
	dst.AdoptPages(src)
	src.Release() // dst's dep is now the only reference

	dst.Reset()
	if got := m.InUse(); got != 0 {
		t.Errorf("InUse = %d after Reset of the last holder", got)
	}
	// The group stays usable after Reset.
	put(dst, 'e', 8)
	dst.Release()
	if got := m.InUse(); got != 0 {
		t.Errorf("InUse = %d after final release", got)
	}
}

func TestAdoptAcrossManagersRehomesAccounting(t *testing.T) {
	srcMgr := NewManager(64, 0)
	dstMgr := NewManager(64, 0)
	src := srcMgr.NewGroup()
	put(src, 'x', 100) // one 100-byte oversized page on the source manager

	dst := dstMgr.NewGroup()
	put(dst, 'd', 8)
	dstBefore := dstMgr.InUse()

	base := dst.AdoptPages(src)
	// The adopter's executor now holds the bytes: the source manager's
	// budget is relieved, the destination's charged.
	if got := srcMgr.InUse(); got != 0 {
		t.Errorf("source manager still charged %d bytes after adoption", got)
	}
	if got := dstMgr.InUse(); got != dstBefore+100 {
		t.Errorf("destination manager charged %d bytes, want %d", got, dstBefore+100)
	}
	if srcMgr.Stats().LiveGroups != 0 || dstMgr.Stats().LiveGroups != 2 {
		t.Errorf("live groups = %d/%d, want 0/2",
			srcMgr.Stats().LiveGroups, dstMgr.Stats().LiveGroups)
	}

	src.Release()
	if got := dst.Bytes(put2ptr(base), 100); !bytes.Equal(got, bytes.Repeat([]byte{'x'}, 100)) {
		t.Errorf("adopted bytes wrong after cross-manager release: %q", got[:4])
	}
	dst.Release() // returns the re-homed page to the destination's pool
	if srcMgr.InUse() != 0 || dstMgr.InUse() != 0 {
		t.Errorf("InUse after release: src=%d dst=%d", srcMgr.InUse(), dstMgr.InUse())
	}
	if dstMgr.Stats().PagesReleased != 2 {
		t.Errorf("destination released %d pages, want 2 (own + re-homed)", dstMgr.Stats().PagesReleased)
	}
	if srcMgr.Stats().PagesReleased != 0 {
		t.Errorf("source released %d pages, want 0 after re-homing", srcMgr.Stats().PagesReleased)
	}
}

// put2ptr is the pointer of the first segment of an adopted group whose
// pages landed at base.
func put2ptr(base int) Ptr { return Ptr{}.Rebase(base) }

func TestAdoptSelfPanics(t *testing.T) {
	m := NewManager(64, 0)
	g := m.NewGroup()
	defer g.Release()
	defer func() {
		if recover() == nil {
			t.Error("expected panic adopting own pages")
		}
	}()
	g.AdoptPages(g)
}

func TestOversizedPagePooledSeparately(t *testing.T) {
	m := NewManager(64, 0)
	g := m.NewGroup()
	g.Alloc(500) // oversized page
	g.Alloc(8)   // standard page
	g.Release()

	st := m.Stats()
	if st.BytesPooled == 0 {
		t.Fatal("expected released pages pooled")
	}
	// A standard request must not consume the oversized page.
	g2 := m.NewGroup()
	seg, _ := g2.Alloc(8)
	if cap(seg) > 64 {
		t.Errorf("standard allocation served from oversized page (cap %d)", cap(seg))
	}
	// An oversized request reuses the parked oversized page.
	reusedBefore := m.Stats().PagesReused
	g2.Alloc(400)
	if got := m.Stats().PagesReused - reusedBefore; got != 1 {
		t.Errorf("oversized request reused %d pages, want 1", got)
	}
	g2.Release()
}
