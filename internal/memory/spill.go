package memory

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Raw page I/O (Appendix C): decomposed data bytes are written to and read
// from disk directly, with no serialization step. The on-disk format is a
// small header (page count, per-page lengths) followed by the raw page
// bytes, so a swapped-out group restores with identical pointers.

const spillMagic = uint32(0xDEC0DE01)

// WriteTo writes the group's pages to w in the raw spill format. It
// returns the number of bytes written.
func (g *Group) WriteTo(w io.Writer) (int64, error) {
	g.checkLive()
	var written int64
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], spillMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(g.pages)))
	n, err := w.Write(hdr[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	var lenBuf [4]byte
	for _, p := range g.pages {
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(p)))
		n, err = w.Write(lenBuf[:])
		written += int64(n)
		if err != nil {
			return written, err
		}
		n, err = w.Write(p)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadGroupFrom reads a group in the spill format from r, allocating its
// pages from m. Pointers recorded before the spill remain valid against
// the restored group.
func ReadGroupFrom(m *Manager, r io.Reader) (*Group, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("memory: reading spill header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != spillMagic {
		return nil, fmt.Errorf("memory: bad spill magic %#x", got)
	}
	numPages := binary.LittleEndian.Uint32(hdr[4:8])
	g := m.NewGroup()
	var lenBuf [4]byte
	for i := uint32(0); i < numPages; i++ {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			g.Release()
			return nil, fmt.Errorf("memory: reading spill page %d length: %w", i, err)
		}
		pageLen := int(binary.LittleEndian.Uint32(lenBuf[:]))
		page := m.getPage(pageLen)
		page = page[:pageLen]
		if _, err := io.ReadFull(r, page); err != nil {
			m.putPages([][]byte{page})
			g.Release()
			return nil, fmt.Errorf("memory: reading spill page %d: %w", i, err)
		}
		g.pages = append(g.pages, page)
		g.bytes += int64(pageLen)
	}
	return g, nil
}
