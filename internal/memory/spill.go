package memory

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Raw page I/O (Appendix C): decomposed data bytes are written to and read
// from disk directly, with no serialization step. The on-disk format is
// one batched header — magic, page count, then every page length — followed
// by the raw page bytes back to back, so a swapped-out group restores with
// identical pointers. Batching the lengths into the header means a spill
// is one small write plus one large write per page, and a restore learns
// every page size up front (one header read, then straight bulk reads).

const spillMagic = uint32(0xDEC0DE01)

// WriteTo writes the group's pages to w in the raw spill format. The
// whole header (magic + count + per-page lengths) goes out as a single
// write, then each page as one bulk write. It returns the number of
// bytes written.
func (g *Group) WriteTo(w io.Writer) (int64, error) {
	g.checkLive()
	var written int64
	hdr := make([]byte, 8+4*len(g.pages))
	binary.LittleEndian.PutUint32(hdr[0:4], spillMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(g.pages)))
	for i, p := range g.pages {
		binary.LittleEndian.PutUint32(hdr[8+4*i:], uint32(len(p)))
	}
	n, err := w.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, err
	}
	for _, p := range g.pages {
		n, err = w.Write(p)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadGroupFrom reads a group in the spill format from r, allocating its
// pages from m. Pointers recorded before the spill remain valid against
// the restored group.
func ReadGroupFrom(m *Manager, r io.Reader) (*Group, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("memory: reading spill header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != spillMagic {
		return nil, fmt.Errorf("memory: bad spill magic %#x", got)
	}
	numPages := binary.LittleEndian.Uint32(hdr[4:8])
	if numPages > maxSnapshotPage {
		return nil, fmt.Errorf("memory: implausible spill page count %d", numPages)
	}
	lens := make([]byte, 4*numPages)
	if _, err := io.ReadFull(r, lens); err != nil {
		return nil, fmt.Errorf("memory: reading spill page lengths: %w", err)
	}
	g := m.NewGroup()
	for i := uint32(0); i < numPages; i++ {
		pageLen := int(binary.LittleEndian.Uint32(lens[4*i:]))
		page := m.getPage(pageLen)
		page = page[:pageLen]
		if _, err := io.ReadFull(r, page); err != nil {
			m.putPages([][]byte{page})
			g.Release()
			return nil, fmt.Errorf("memory: reading spill page %d: %w", i, err)
		}
		g.pages = append(g.pages, page)
		g.bytes += int64(pageLen)
	}
	return g, nil
}
