package memory

import (
	"bytes"
	"testing"
)

func BenchmarkGroupAppend(b *testing.B) {
	m := NewManager(1<<20, 0)
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	g := m.NewGroup()
	for i := 0; i < b.N; i++ {
		if g.Len() > 32<<20 {
			b.StopTimer()
			g.Release()
			g = m.NewGroup()
			b.StartTimer()
		}
		g.Append(payload)
	}
	g.Release()
}

func BenchmarkGroupRandomRead(b *testing.B) {
	m := NewManager(1<<20, 0)
	g := m.NewGroup()
	defer g.Release()
	const n = 10000
	ptrs := make([]Ptr, n)
	for i := range ptrs {
		ptrs[i] = g.Append(make([]byte, 64))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		sink += g.Bytes(ptrs[i%n], 64)[0]
	}
	_ = sink
}

func BenchmarkGroupCursorScan(b *testing.B) {
	m := NewManager(1<<20, 0)
	g := m.NewGroup()
	defer g.Release()
	const n = 10000
	for i := 0; i < n; i++ {
		g.Append(make([]byte, 64))
	}
	b.SetBytes(64 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.Scan()
		for !c.Done() {
			_ = c.Next(64)
		}
	}
}

func BenchmarkPoolReuse(b *testing.B) {
	m := NewManager(64<<10, 0)
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := m.NewGroup()
		for j := 0; j < 64; j++ {
			g.Append(payload)
		}
		g.Release() // pages return to the pool; steady state allocates nothing
	}
}

func BenchmarkSpillRoundTrip(b *testing.B) {
	m := NewManager(256<<10, 0)
	g := m.NewGroup()
	for i := 0; i < 4096; i++ {
		g.Append(make([]byte, 256))
	}
	var buf bytes.Buffer
	b.SetBytes(g.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := g.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		g2, err := ReadGroupFrom(m, &buf)
		if err != nil {
			b.Fatal(err)
		}
		g2.Release()
	}
	b.StopTimer()
	g.Release()
}
