package memory

import (
	"bytes"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := NewManager(128, 0)
	g := src.NewGroup()
	var ptrs []Ptr
	var want [][]byte
	for i := 0; i < 40; i++ {
		b := bytes.Repeat([]byte{byte(i)}, 1+i*7%90)
		ptrs = append(ptrs, g.Append(b))
		want = append(want, b)
	}
	// Oversized single object gets a dedicated page.
	big := bytes.Repeat([]byte{0xee}, 500)
	ptrs = append(ptrs, g.Append(big))
	want = append(want, big)

	var buf bytes.Buffer
	n, err := g.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("Snapshot reported %d bytes, wrote %d", n, buf.Len())
	}
	if sz := g.SnapshotSize(); sz != n {
		t.Errorf("SnapshotSize = %d, Snapshot wrote %d", sz, n)
	}

	// Restore into a different manager with a different page size.
	dst := NewManager(4096, 0)
	r, err := dst.RestoreGroup(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumPages() != g.NumPages() || r.Len() != g.Len() {
		t.Fatalf("restored %d pages / %d bytes, want %d / %d",
			r.NumPages(), r.Len(), g.NumPages(), g.Len())
	}
	// Every source pointer addresses the identical segment in the restored
	// group: page boundaries survive the wire.
	for i, ptr := range ptrs {
		if got := r.Bytes(ptr, len(want[i])); !bytes.Equal(got, want[i]) {
			t.Fatalf("segment %d at %v differs after restore", i, ptr)
		}
	}
	// Accounting: the restored pages are charged to dst, released on
	// Release, and dst goes back to zero.
	if dst.InUse() == 0 {
		t.Error("restore charged no bytes to the destination manager")
	}
	r.Release()
	if dst.InUse() != 0 {
		t.Errorf("destination manager still charges %d bytes after release", dst.InUse())
	}
	if st := dst.Stats(); st.LiveGroups != 0 {
		t.Errorf("destination has %d live groups after release", st.LiveGroups)
	}
	g.Release()
	if src.InUse() != 0 {
		t.Errorf("source manager still charges %d bytes", src.InUse())
	}
}

func TestSnapshotEmptyGroup(t *testing.T) {
	m := NewManager(64, 0)
	g := m.NewGroup()
	defer g.Release()
	var buf bytes.Buffer
	if _, err := g.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := m.RestoreGroup(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumPages() != 0 || r.Len() != 0 {
		t.Errorf("restored empty group has %d pages / %d bytes", r.NumPages(), r.Len())
	}
	r.Release()
}

func TestRestoreGroupTruncatedAndCorrupt(t *testing.T) {
	m := NewManager(64, 0)
	g := m.NewGroup()
	g.Append(bytes.Repeat([]byte{1}, 50))
	g.Append(bytes.Repeat([]byte{2}, 50))
	var buf bytes.Buffer
	if _, err := g.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	g.Release()

	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := m.RestoreGroup(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes restored without error", cut, len(full))
		}
	}
	// Implausible page count must be rejected before allocating.
	if _, err := m.RestoreGroup(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})); err == nil {
		t.Error("corrupt page count restored without error")
	}
	if m.InUse() != 0 {
		t.Errorf("failed restores leaked %d bytes", m.InUse())
	}
	if st := m.Stats(); st.LiveGroups != 0 {
		t.Errorf("failed restores leaked %d live groups", st.LiveGroups)
	}
}

// TestSnapshotAfterAdoption: a group that adopted pages snapshots its full
// logical page array (owned + adopted) and restores as a plain owned group.
func TestSnapshotAfterAdoption(t *testing.T) {
	m := NewManager(64, 0)
	a := m.NewGroup()
	pa := a.Append([]byte("alpha"))
	b := m.NewGroup()
	pb := b.Append([]byte("bravo"))
	base := a.AdoptPages(b)
	b.Release()

	var buf bytes.Buffer
	if _, err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := m.RestoreGroup(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(r.Bytes(pa, 5)); got != "alpha" {
		t.Errorf("owned segment = %q", got)
	}
	if got := string(r.Bytes(pb.Rebase(base), 5)); got != "bravo" {
		t.Errorf("adopted segment = %q", got)
	}
	r.Release()
	a.Release()
	if m.InUse() != 0 {
		t.Errorf("leaked %d bytes", m.InUse())
	}
}
