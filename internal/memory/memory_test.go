package memory

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocAppendRead(t *testing.T) {
	m := NewManager(64, 0)
	g := m.NewGroup()
	defer g.Release()

	p1 := g.Append([]byte("hello"))
	p2 := g.Append([]byte("world!"))
	if got := string(g.Bytes(p1, 5)); got != "hello" {
		t.Errorf("read back %q, want hello", got)
	}
	if got := string(g.Bytes(p2, 6)); got != "world!" {
		t.Errorf("read back %q, want world!", got)
	}
	if g.Len() != 11 {
		t.Errorf("Len = %d, want 11", g.Len())
	}
	if g.EndOffset() != 11 {
		t.Errorf("EndOffset = %d, want 11", g.EndOffset())
	}
}

func TestSegmentsNeverSpanPages(t *testing.T) {
	m := NewManager(16, 0)
	g := m.NewGroup()
	defer g.Release()

	g.Append(make([]byte, 10)) // page 0: 10/16
	ptr := g.Append(make([]byte, 10))
	if ptr.Page != 1 || ptr.Off != 0 {
		t.Errorf("second segment at %v, want page 1 off 0", ptr)
	}
	if g.NumPages() != 2 {
		t.Errorf("NumPages = %d, want 2", g.NumPages())
	}
}

func TestOversizedAllocation(t *testing.T) {
	m := NewManager(16, 0)
	g := m.NewGroup()
	defer g.Release()

	big := make([]byte, 100)
	for i := range big {
		big[i] = byte(i)
	}
	ptr := g.Append(big)
	if !bytes.Equal(g.Bytes(ptr, 100), big) {
		t.Error("oversized segment corrupted")
	}
}

func TestPagePooling(t *testing.T) {
	m := NewManager(32, 0)
	g := m.NewGroup()
	g.Append(make([]byte, 20))
	g.Append(make([]byte, 20))
	g.Release()

	st := m.Stats()
	if st.PagesAllocated != 2 {
		t.Fatalf("PagesAllocated = %d, want 2", st.PagesAllocated)
	}
	if st.BytesInUse != 0 {
		t.Errorf("BytesInUse after release = %d, want 0", st.BytesInUse)
	}

	g2 := m.NewGroup()
	g2.Append(make([]byte, 20))
	g2.Append(make([]byte, 20))
	defer g2.Release()
	st = m.Stats()
	if st.PagesReused != 2 {
		t.Errorf("PagesReused = %d, want 2 (got stats %+v)", st.PagesReused, st)
	}
	if st.PagesAllocated != 2 {
		t.Errorf("PagesAllocated = %d, want still 2", st.PagesAllocated)
	}
}

func TestRefcounting(t *testing.T) {
	m := NewManager(32, 0)
	g := m.NewGroup()
	g.Append([]byte("abc"))

	g.Retain()
	g.Release()
	// Still alive after one release of two references.
	if got := string(g.Bytes(Ptr{}, 3)); got != "abc" {
		t.Errorf("read %q, want abc", got)
	}
	g.Release()
	if g.Refs() != 0 {
		t.Errorf("Refs = %d, want 0", g.Refs())
	}

	defer func() {
		if recover() == nil {
			t.Error("use after final release should panic")
		}
	}()
	g.Bytes(Ptr{}, 3)
}

func TestOverRelease(t *testing.T) {
	m := NewManager(32, 0)
	g := m.NewGroup()
	g.Release()
	defer func() {
		if recover() == nil {
			t.Error("double release should panic")
		}
	}()
	g.Release()
}

func TestRetainAfterRelease(t *testing.T) {
	m := NewManager(32, 0)
	g := m.NewGroup()
	g.Release()
	defer func() {
		if recover() == nil {
			t.Error("Retain after release should panic")
		}
	}()
	g.Retain()
}

func TestDepGroups(t *testing.T) {
	// Fig 7(a): a secondary container's page-info holds depPages to the
	// primary's group; releasing the secondary drops its retain.
	m := NewManager(32, 0)
	primary := m.NewGroup()
	primary.Append([]byte("data"))

	secondary := m.NewGroup()
	secondary.AddDep(primary)
	if primary.Refs() != 2 {
		t.Fatalf("primary refs = %d, want 2", primary.Refs())
	}
	if len(secondary.Deps()) != 1 {
		t.Fatalf("deps = %d, want 1", len(secondary.Deps()))
	}

	primary.Release() // owner drops it; data must survive via the secondary
	if got := string(primary.Bytes(Ptr{}, 4)); got != "data" {
		t.Errorf("read %q, want data", got)
	}
	secondary.Release()
	if primary.Refs() != 0 {
		t.Errorf("primary refs after secondary release = %d, want 0", primary.Refs())
	}
}

func TestCheckedBytes(t *testing.T) {
	m := NewManager(32, 0)
	g := m.NewGroup()
	defer g.Release()
	g.Append([]byte("abcdef"))

	if _, err := g.CheckedBytes(Ptr{Page: 0, Off: 0}, 6); err != nil {
		t.Errorf("valid read failed: %v", err)
	}
	if _, err := g.CheckedBytes(Ptr{Page: 1, Off: 0}, 1); err == nil {
		t.Error("out-of-range page should error")
	}
	if _, err := g.CheckedBytes(Ptr{Page: 0, Off: 4}, 10); err == nil {
		t.Error("out-of-range segment should error")
	}
	if _, err := g.CheckedBytes(Ptr{Page: 0, Off: -1}, 1); err == nil {
		t.Error("negative offset should error")
	}
}

func TestCursorScan(t *testing.T) {
	m := NewManager(16, 0)
	g := m.NewGroup()
	defer g.Release()

	sizes := []int{5, 10, 3, 16, 1}
	var want [][]byte
	for i, n := range sizes {
		b := bytes.Repeat([]byte{byte('a' + i)}, n)
		g.Append(b)
		want = append(want, b)
	}
	c := g.Scan()
	for i, n := range sizes {
		if c.Done() {
			t.Fatalf("cursor done early at segment %d", i)
		}
		got := c.Next(n)
		if !bytes.Equal(got, want[i]) {
			t.Errorf("segment %d: got %q want %q", i, got, want[i])
		}
	}
	if !c.Done() {
		t.Error("cursor should be done")
	}
}

func TestCursorSeek(t *testing.T) {
	m := NewManager(64, 0)
	g := m.NewGroup()
	defer g.Release()
	g.Append([]byte("0123456789"))
	c := g.Scan()
	c.Next(4)
	mark := c.Ptr()
	c.Next(4)
	c.Seek(mark)
	if got := string(c.Next(3)); got != "456" {
		t.Errorf("after seek read %q, want 456", got)
	}
}

func TestCursorOverrun(t *testing.T) {
	m := NewManager(64, 0)
	g := m.NewGroup()
	defer g.Release()
	g.Append([]byte("abc"))
	c := g.Scan()
	c.Next(3)
	defer func() {
		if recover() == nil {
			t.Error("reading past end should panic")
		}
	}()
	c.Next(1)
}

func TestReset(t *testing.T) {
	m := NewManager(32, 0)
	g := m.NewGroup()
	defer g.Release()
	g.Append(make([]byte, 20))
	g.Append(make([]byte, 20))
	g.Reset()
	if g.Len() != 0 || g.NumPages() != 0 {
		t.Errorf("after reset: Len=%d NumPages=%d", g.Len(), g.NumPages())
	}
	if m.InUse() != 0 {
		t.Errorf("InUse after reset = %d, want 0", m.InUse())
	}
	// Group remains usable.
	p := g.Append([]byte("x"))
	if string(g.Bytes(p, 1)) != "x" {
		t.Error("group unusable after reset")
	}
}

func TestBudgetAccounting(t *testing.T) {
	m := NewManager(32, 64)
	g := m.NewGroup()
	defer g.Release()
	if m.OverBudget() {
		t.Error("empty manager over budget")
	}
	g.Append(make([]byte, 30))
	g.Append(make([]byte, 30))
	g.Append(make([]byte, 30)) // 3 pages = 96 bytes > 64
	if !m.OverBudget() {
		t.Error("manager should be over budget")
	}
	if m.Limit() != 64 {
		t.Errorf("Limit = %d", m.Limit())
	}
}

func TestSpillRoundTrip(t *testing.T) {
	m := NewManager(16, 0)
	g := m.NewGroup()
	var ptrs []Ptr
	var want [][]byte
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		b := make([]byte, 1+r.Intn(24))
		r.Read(b)
		ptrs = append(ptrs, g.Append(b))
		want = append(want, b)
	}

	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g.Release()

	g2, err := ReadGroupFrom(m, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Release()
	for i, p := range ptrs {
		if got := g2.Bytes(p, len(want[i])); !bytes.Equal(got, want[i]) {
			t.Fatalf("segment %d mismatch after spill round-trip", i)
		}
	}
}

func TestSpillBadMagic(t *testing.T) {
	m := NewManager(16, 0)
	if _, err := ReadGroupFrom(m, bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("bad magic should error")
	}
}

func TestSpillTruncated(t *testing.T) {
	m := NewManager(16, 0)
	g := m.NewGroup()
	g.Append([]byte("some data here"))
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g.Release()
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadGroupFrom(m, bytes.NewReader(trunc)); err == nil {
		t.Error("truncated spill should error")
	}
	if got := m.Stats().LiveGroups; got != 0 {
		t.Errorf("LiveGroups after failed restore = %d, want 0", got)
	}
}

func TestConcurrentGroups(t *testing.T) {
	m := NewManager(1024, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				g := m.NewGroup()
				var ptrs []Ptr
				var lens []int
				for j := 0; j < 20; j++ {
					n := 1 + r.Intn(64)
					b := make([]byte, n)
					b[0] = byte(j)
					ptrs = append(ptrs, g.Append(b))
					lens = append(lens, n)
				}
				for j, p := range ptrs {
					if g.Bytes(p, lens[j])[0] != byte(j) {
						panic("corrupted segment")
					}
				}
				g.Release()
			}
		}(int64(w))
	}
	wg.Wait()
	if got := m.InUse(); got != 0 {
		t.Errorf("InUse after all releases = %d, want 0", got)
	}
	if got := m.Stats().LiveGroups; got != 0 {
		t.Errorf("LiveGroups = %d, want 0", got)
	}
}

// Property: any sequence of appends reads back intact through both random
// access and a sequential cursor, with Len equal to the sum of segment
// sizes.
func TestGroupRoundTripProperty(t *testing.T) {
	m := NewManager(64, 0)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := m.NewGroup()
		defer g.Release()
		n := r.Intn(40)
		segs := make([][]byte, n)
		ptrs := make([]Ptr, n)
		var total int64
		for i := range segs {
			b := make([]byte, r.Intn(100))
			r.Read(b)
			segs[i] = b
			ptrs[i] = g.Append(b)
			total += int64(len(b))
		}
		if g.Len() != total {
			return false
		}
		for i := range segs {
			if !bytes.Equal(g.Bytes(ptrs[i], len(segs[i])), segs[i]) {
				return false
			}
		}
		c := g.Scan()
		for i := range segs {
			if len(segs[i]) == 0 {
				continue
			}
			if !bytes.Equal(c.Next(len(segs[i])), segs[i]) {
				return false
			}
		}
		return c.Done()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDefaultPageSize(t *testing.T) {
	m := NewManager(0, 0)
	if m.PageSize() != DefaultPageSize {
		t.Errorf("PageSize = %d, want %d", m.PageSize(), DefaultPageSize)
	}
}

func TestNegativeAllocPanics(t *testing.T) {
	m := NewManager(32, 0)
	g := m.NewGroup()
	defer g.Release()
	defer func() {
		if recover() == nil {
			t.Error("negative alloc should panic")
		}
	}()
	g.Alloc(-1)
}

func TestFootprint(t *testing.T) {
	m := NewManager(32, 0)
	g := m.NewGroup()
	defer g.Release()
	g.Append(make([]byte, 10))
	if g.Footprint() != 32 {
		t.Errorf("Footprint = %d, want 32", g.Footprint())
	}
	if g.Len() != 10 {
		t.Errorf("Len = %d, want 10", g.Len())
	}
}
