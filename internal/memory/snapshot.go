package memory

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The page-group wire frame: because a group already holds records as
// contiguous bytes, its network representation is the pages themselves —
// a count header followed by each page's used prefix, length-prefixed.
// Page boundaries are preserved exactly, so every Ptr minted in the
// source group addresses the same segment in the restored group without
// translation (a restore starts at page 0, making Ptr.Rebase the
// identity). This is the property the paper's serialization experiments
// (§6.5) turn on: shipping a Deca container costs a handful of bulk
// copies, not a per-record encode.

// maxSnapshotPage bounds a single restored page, guarding RestoreGroup
// against corrupt or hostile length headers off the wire.
const maxSnapshotPage = 1 << 31

// ByteReader is the stream shape RestoreGroup consumes: byte-level reads
// for the varint headers plus bulk reads for page bodies. *bufio.Reader
// and *bytes.Reader both satisfy it. Byte-level varint reads consume
// exactly the frame's bytes, so a caller may continue decoding its own
// trailing sections from the same stream.
type ByteReader interface {
	io.Reader
	io.ByteReader
}

// Snapshot writes the group as a framed page sequence and returns the
// number of bytes written: uvarint page count, then for each page a
// uvarint length and the page's used bytes, emitted straight from the
// page — no per-record work, no staging copy.
func (g *Group) Snapshot(w io.Writer) (int64, error) {
	g.checkLive()
	var written int64
	var hdr [binary.MaxVarintLen64]byte
	n, err := w.Write(hdr[:binary.PutUvarint(hdr[:], uint64(len(g.pages)))])
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("memory: snapshot header: %w", err)
	}
	for _, p := range g.pages {
		n, err = w.Write(hdr[:binary.PutUvarint(hdr[:], uint64(len(p)))])
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("memory: snapshot page header: %w", err)
		}
		n, err = w.Write(p)
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("memory: snapshot page: %w", err)
		}
	}
	return written, nil
}

// SnapshotSegments emits the exact byte sequence Snapshot writes,
// decomposed for a vectored sender: stage(n) must return an n-byte
// scratch region at the stream's current position (varint headers are
// built in place there), and page(p) receives each page's used prefix to
// ship by reference — no copy is made, so the caller must keep the group
// retained until the referenced bytes have been sent. Keeping this
// callback-shaped leaves the memory layer free of any transport types.
func (g *Group) SnapshotSegments(stage func(n int) []byte, page func(p []byte)) {
	g.checkLive()
	var hdr [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(hdr[:], uint64(len(g.pages)))
	copy(stage(k), hdr[:k])
	for _, p := range g.pages {
		k = binary.PutUvarint(hdr[:], uint64(len(p)))
		copy(stage(k), hdr[:k])
		page(p)
	}
}

// SnapshotSize returns the exact byte length Snapshot will write.
func (g *Group) SnapshotSize() int64 {
	g.checkLive()
	total := int64(uvarintLen(uint64(len(g.pages))))
	for _, p := range g.pages {
		total += int64(uvarintLen(uint64(len(p)))) + int64(len(p))
	}
	return total
}

func uvarintLen(v uint64) int {
	var b [binary.MaxVarintLen64]byte
	return binary.PutUvarint(b[:], v)
}

// RestoreGroup rebuilds a snapshotted page group inside this manager: the
// destination executor's side of a remote shuffle fetch. Pages come from
// this manager's pool and are charged against its budget, page boundaries
// and offsets are preserved one-to-one with the source, and the restored
// group owns all of its pages (no adoptions, refcount 1). On any error
// the partially restored group is released before returning.
func (m *Manager) RestoreGroup(r ByteReader) (*Group, error) {
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("memory: restore header: %w", err)
	}
	if count > maxSnapshotPage {
		return nil, fmt.Errorf("memory: restore: implausible page count %d", count)
	}
	g := m.NewGroup()
	for i := uint64(0); i < count; i++ {
		plen, err := binary.ReadUvarint(r)
		if err != nil {
			g.Release()
			return nil, fmt.Errorf("memory: restore page %d header: %w", i, err)
		}
		if plen > maxSnapshotPage {
			g.Release()
			return nil, fmt.Errorf("memory: restore page %d: implausible length %d", i, plen)
		}
		page := m.getPage(int(plen))[:plen]
		// Append the page directly — Alloc would pack small source pages
		// together and break the Ptr address space.
		g.pages = append(g.pages, page)
		if g.adopted != nil {
			g.adopted = append(g.adopted, false)
		}
		g.bytes += int64(plen)
		if _, err := io.ReadFull(r, page); err != nil {
			g.Release()
			return nil, fmt.Errorf("memory: restore page %d body: %w", i, err)
		}
	}
	return g, nil
}
